// Package server exposes the OLAP engine over HTTP/JSON: load or
// snapshot a graph, materialize an analytical schema, submit analytical
// queries and OLAP operations, and inspect server statistics. Every
// query is answered through a shared viewreg.Registry, so concurrent
// clients transparently reuse each other's materialized views — the
// paper's rewriting (Figure 2) as a multi-tenant service.
//
// Endpoints:
//
//	POST /load           N-Triples body → add to the base graph
//	                     (?saturate=1 applies RDFS entailment,
//	                      ?freeze=0 skips re-freezing after the load)
//	POST /insert         N-Triples body → delta write into the serving
//	                     instance (?graph=base targets the base graph):
//	                     the frozen indexes survive, registered views are
//	                     maintained through the delta feed
//	POST /load-snapshot  binary snapshot body → replace the base graph
//	GET  /snapshot       binary snapshot of the base graph (?graph=instance)
//	POST /materialize    SchemaRequest → serve the materialized instance
//	POST /freeze         compact base and instance onto the sorted indexes
//	POST /query          QueryRequest → QueryResponse
//	GET  /statsz         StatsResponse (strategies, latencies, registry)
//	GET  /healthz        liveness probe
//
// Concurrency model: queries run under a read lock (the store and the
// registry are concurrency-safe for readers); anything that writes the
// graphs — load, insert, load-snapshot, materialize, freeze — takes the
// write lock, so a mutation never races an evaluation. With
// Config.BackgroundCompaction, the threshold-triggered folding of the
// delta overlay into a rebuilt frozen base leaves the write path too:
// the merge runs under the read lock, concurrent with queries, and only
// the pointer swap takes the write lock. A write to the
// serving instance notifies the registry inside the critical section:
// views behind only on the delta sequence are *maintained* (the store's
// delta feed is applied to their pres(Q) via internal/incr), and only
// base-epoch moves (compaction, re-materialization) evict them — so
// rewrites keep being served from materialized views under a write-heavy
// workload.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rdfcube/internal/algebra"
	"rdfcube/internal/faultfs"
	"rdfcube/internal/nt"
	"rdfcube/internal/obs"
	"rdfcube/internal/obs/workload"
	"rdfcube/internal/rdf"
	"rdfcube/internal/rdfs"
	"rdfcube/internal/store"
	"rdfcube/internal/viewreg"
)

// Config parameterizes a server.
type Config struct {
	// MaxViewBytes bounds the shared view registry (0 = unbounded).
	MaxViewBytes int64
	// MaxViewEntries additionally bounds the entry count.
	MaxViewEntries int
	// MaxBodyBytes caps request bodies (default 1 GiB).
	MaxBodyBytes int64
	// CompactThreshold overrides the stores' delta-overlay size that
	// triggers compaction into a rebuilt frozen base (0 = store default).
	CompactThreshold int
	// BackgroundCompaction moves threshold-triggered compaction off the
	// write path: a write that fills the delta overlay returns
	// immediately, and a background goroutine merges base + overlay
	// (running concurrently with queries under the read lock) and swaps
	// the rebuilt base in under the write lock. Explicit POST /freeze
	// still compacts synchronously.
	BackgroundCompaction bool
	// DataDir enables durability: snapshots, write-ahead logs and the
	// view-registry snapshot live under this directory, written by
	// checkpoints and consulted by Open on startup. Empty means a purely
	// in-memory server.
	DataDir string
	// Mapped serves the base graph from an mmap'd snapshot
	// (store.OpenFrozenSnapshotMapped): frozen columns and the
	// dictionary stay on disk behind fixed-size block caches, so
	// steady-state resident memory is cache-bounded instead of
	// dataset-bounded. Snapshots are written in the mappable v3 format;
	// background compaction folds the delta overlay into a new snapshot
	// file and remaps atomically under the write lock. Requires DataDir
	// (the mapping needs a real file to serve from).
	Mapped bool
	// SpillThreshold, in mapped mode, spills the delta overlay's sorted
	// side to an on-disk run under DataDir/spill once it holds this many
	// triples, keeping write bursts between compactions off the heap.
	// Zero keeps the overlay fully in memory.
	SpillThreshold int
	// WALGroupCommit coalesces concurrent writers' WAL appends into
	// shared fsyncs: each record is staged under the write lock (replay
	// order = apply order) and the fsync happens outside it, with the
	// commit leader waiting up to this window for stragglers when
	// writers overlap. Zero disables (one fsync per write, the default).
	WALGroupCommit time.Duration
	// FS routes every durable file operation; nil means the real OS.
	// Fault-injection tests (and -fault-plan) pass a faultfs.Injector.
	FS faultfs.FS
	// QueryTimeout bounds each query evaluation; past it the evaluation
	// is cancelled cooperatively and the request answered 504 (0 = no
	// deadline).
	QueryTimeout time.Duration
	// MaxInFlight caps concurrently-admitted requests (0 = unlimited).
	// An excess request waits up to QueueTimeout (default 1s) for a
	// slot, then is shed with 503 + Retry-After. Health and stats
	// probes are exempt.
	MaxInFlight  int
	QueueTimeout time.Duration
	// RetryMin/RetryMax bound the exponential backoff of degraded-mode
	// durability re-arming (defaults 100ms / 5s).
	RetryMin time.Duration
	RetryMax time.Duration
	// TraceAll traces every query: per-stage span trees through
	// viewreg → bgp → store → persist, inspectable at GET
	// /debug/traces/last. ?explain=analyze traces its own request
	// regardless of this flag.
	TraceAll bool
	// SlowQuery arms the slow-query log: any query slower than this is
	// logged (Warn) with its trace ID and per-stage breakdown. Arming
	// it implies tracing every query — the trace is the log payload.
	// Zero disables.
	SlowQuery time.Duration
	// SlowQueryBurst bounds the slow-query log per query fingerprint: at
	// most this many records per shape initially, refilled at one per
	// second; suppressed records are counted onto the next emitted one.
	// Zero or negative means the default burst of 1.
	SlowQueryBurst int
	// WorkloadTopK sizes the workload profiler's top-K-by-cost sketch
	// (0 = default 20). The profiler itself is always on: it aggregates
	// the per-query cost accounting by canonical query fingerprint,
	// served at GET /debug/workload, in /statsz and as
	// rdfcube_workload_* series.
	WorkloadTopK int
	// AdmissionCost switches the view registry from admit-always to
	// cost-based admission: a directly evaluated view is materialized
	// only when its measured evaluation cost times the workload
	// profiler's observed reuse for the shape outweighs its byte
	// footprint, and eviction prefers the lowest benefit-per-byte entry
	// over plain LRU.
	AdmissionCost bool
	// AdmissionThreshold scales the byte price of cost-based admission
	// (0 = 1.0): admit when evalNs × reuse ≥ bytes × threshold.
	AdmissionThreshold float64
	// Logger receives the server's structured logs; nil means
	// slog.Default().
	Logger *slog.Logger
}

// Server is the HTTP facade over one base graph, one serving instance
// and one shared view registry.
type Server struct {
	cfg   Config
	start time.Time

	// mu orders graph mutations before queries: RLock for answering,
	// Lock for load/materialize/freeze.
	mu   sync.RWMutex
	base *store.Store
	inst *store.Store // == base until a schema is materialized
	reg  *viewreg.Registry
	// closed (guarded by mu) stops new background compactions from
	// being scheduled once Close has begun.
	closed bool

	// dur is the durable state (persist.go); nil for in-memory servers.
	dur *durability

	// Background compaction state: one in-flight compaction at a time,
	// counted in the metric registry; Close waits on the group so
	// shutdown never races a checkpointing compaction.
	compacting atomic.Bool
	compactWG  sync.WaitGroup

	// Resilience state (resilience.go): degraded read-only mode and the
	// admission semaphore. Shed/panic counts live in the registry.
	deg degraded
	sem chan struct{}

	// Observability (obs.go): the metric registry every subsystem
	// reports into, the per-route request collectors, the query tracer,
	// the workload profiler and the structured logger. The profiler is
	// server-owned (not per-registry): its per-shape reuse statistics
	// survive instance swaps, which is what makes cost-based admission
	// of the *next* registry informed.
	obs       *obs.Registry
	tracer    *obs.Tracer
	workload  *workload.Registry
	logger    *slog.Logger
	met       serverMetrics
	epMu      sync.Mutex
	endpoints map[string]*endpointMetrics
}

// New returns a server over the given base graph (nil for an empty one).
// The graph is served as-is until /materialize installs an instance.
func New(base *store.Store, cfg Config) *Server {
	if base == nil {
		base = store.New()
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 1 << 30
	}
	s := &Server{
		cfg:       cfg,
		start:     time.Now(),
		base:      base,
		logger:    cfg.Logger,
		obs:       obs.NewRegistry(),
		tracer:    &obs.Tracer{},
		endpoints: map[string]*endpointMetrics{},
	}
	s.met = newServerMetrics(s.obs)
	s.workload = workload.New(workload.Config{
		TopK:    cfg.WorkloadTopK,
		Metrics: s.obs,
	})
	s.tracer.SetEnabled(cfg.TraceAll)
	s.tracer.SetSlowThreshold(cfg.SlowQuery)
	s.tracer.SetSlowQueryBurst(cfg.SlowQueryBurst)
	s.tracer.SetLogger(s.slog())
	if cfg.MaxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	s.installInstance(base) // also applies the background-compaction mode
	s.wireGauges()
	return s
}

// maybeCompact schedules a background compaction of g when its delta
// overlay has reached the threshold and none is in flight. Caller holds
// the write lock (the check reads the store and the closed flag).
func (s *Server) maybeCompact(g *store.Store) {
	if s.closed || !s.cfg.BackgroundCompaction || !g.NeedsCompaction() {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return // one at a time; the next write re-triggers
	}
	s.compactWG.Add(1)
	go s.compactAsync(g)
}

// compactAsync folds g's delta overlay into a rebuilt frozen base off
// the write path: the merge runs under the read lock, concurrent with
// queries, and only the swap takes the write lock. A prepare raced by a
// structural change (explicit freeze, re-materialization) is discarded
// — the next threshold write schedules a fresh one.
//
// A durable mapped base graph compacts through the mapped path instead:
// the merge is serialized straight into a new snapshot file (atomic
// rename over base.snap) and the install remaps it, so the folded base
// never becomes a resident heap structure. A mapped store that is
// serving a diverged heap base (explicit /freeze folded it) falls back
// to the heap compactor.
func (s *Server) compactAsync(g *store.Store) {
	defer s.compactWG.Done()
	defer s.compacting.Store(false)
	var (
		pc *store.PreparedCompaction
		pm *store.PreparedMappedCompaction
	)
	s.mu.RLock()
	if g.Mapped() && g == s.base && s.durable() {
		var err error
		pm, err = g.PrepareMappedCompaction(s.dur.fsys, s.dur.path("base.snap"), store.MappedOptions{})
		if err != nil {
			s.mu.RUnlock()
			// The fold could not be written (disk full, I/O error): the
			// durability contract for the *next* compaction checkpoint is
			// already in doubt, so degrade now, like a failed checkpoint.
			s.enterDegraded("compaction prepare", err)
			return
		}
	}
	if pm == nil {
		pc = g.PrepareCompaction()
	}
	s.mu.RUnlock()
	if pm == nil && pc == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if pm != nil {
		ok, err := g.InstallMappedCompaction(pm)
		if err != nil {
			s.enterDegraded("compaction install", err)
			return
		}
		if !ok {
			return
		}
	} else if !g.InstallCompaction(pc) {
		return
	}
	s.met.bgCompactions.Inc()
	if g == s.inst {
		// The base epoch moved: sweep the registry eagerly, exactly as an
		// inline compaction would have inside the write critical section.
		s.reg.NotifyWrite()
	}
	if s.durable() {
		// The WAL must re-baseline across every base-epoch move. There is
		// no request to report a failure through, so it is counted and the
		// server goes read-only until the backoff retry re-arms.
		if err := s.checkpointLocked(); err != nil {
			s.enterDegraded("compaction checkpoint", err)
		}
	}
}

// installInstance swaps the serving instance and resets the registry.
// Caller must hold the write lock (or be the constructor).
func (s *Server) installInstance(inst *store.Store) {
	if s.cfg.CompactThreshold > 0 {
		inst.SetCompactThreshold(s.cfg.CompactThreshold)
	}
	if s.cfg.BackgroundCompaction {
		inst.SetInlineCompaction(false)
	}
	s.inst = inst
	s.reg = viewreg.New(inst, viewreg.Config{
		MaxBytes:           s.cfg.MaxViewBytes,
		MaxEntries:         s.cfg.MaxViewEntries,
		Metrics:            s.obs,
		AdmissionCost:      s.cfg.AdmissionCost,
		AdmissionThreshold: s.cfg.AdmissionThreshold,
		Workload:           s.workload,
	})
}

// Registry exposes the shared view registry (tests, diagnostics).
func (s *Server) Registry() *viewreg.Registry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reg
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /load", s.instrument("/load", s.handleLoad))
	mux.Handle("POST /insert", s.instrument("/insert", s.handleInsert))
	mux.Handle("POST /load-snapshot", s.instrument("/load-snapshot", s.handleLoadSnapshot))
	mux.Handle("GET /snapshot", s.instrument("/snapshot", s.handleSnapshot))
	mux.Handle("POST /snapshot", s.instrument("/checkpoint", s.handleCheckpoint))
	mux.Handle("POST /materialize", s.instrument("/materialize", s.handleMaterialize))
	mux.Handle("POST /freeze", s.instrument("/freeze", s.handleFreeze))
	mux.Handle("POST /query", s.instrument("/query", s.handleQuery))
	mux.Handle("GET /statsz", s.instrument("/statsz", s.handleStatsz))
	mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.Handle("GET /debug/traces/last", s.instrument("/debug/traces/last", s.handleTraces))
	mux.Handle("GET /debug/workload", s.instrument("/debug/workload", s.handleWorkload))
	mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	return mux
}

// handlerFunc is a handler returning an HTTP status and optional error.
// A non-nil error with a zero status is counted in the endpoint metrics
// but rendered by the handler itself (or not at all — e.g. a failure
// mid-stream, after the response headers have gone out).
type handlerFunc func(w http.ResponseWriter, r *http.Request) (int, error)

// instrument wraps a handler with admission control, panic containment,
// body capping, latency/error metrics and uniform error rendering. The
// collectors are resolved once, at wiring time; the request path itself
// takes no lock — counters are striped atomics, the histogram a fixed
// bucket array (the old version funneled every request through one
// process-wide mutex).
func (s *Server) instrument(route string, h handlerFunc) http.Handler {
	m := s.endpoint(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !exemptFromAdmission(route) {
			release, ok := s.acquire(w, r)
			if !ok {
				return
			}
			defer release()
		}
		m.inFlight.Inc()
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		var status int
		var err error
		func() {
			// A panicking handler must not take the process down with it:
			// the connection gets a 500 (when still writable) and the
			// panic is surfaced in /statsz instead of a crash loop. State
			// corruption is not a worry here — mutations happen under
			// s.mu, whose Unlock is deferred, and the stores append-only.
			defer func() {
				if p := recover(); p != nil {
					s.met.panics.Inc()
					s.slog().Error("handler panic",
						slog.String("route", route), slog.Any("panic", p))
					status, err = 0, fmt.Errorf("panic: %v", p)
					if !sw.wrote {
						s.writeJSON(sw, http.StatusInternalServerError,
							errorResponse{Error: fmt.Sprintf("internal error: %v", p)})
					}
				}
			}()
			status, err = h(sw, r)
		}()
		elapsed := time.Since(t0).Nanoseconds()
		if err != nil && status != 0 {
			s.writeJSON(sw, status, errorResponse{Error: err.Error()})
		}
		m.count.Inc()
		if err != nil {
			m.errors.Inc()
		}
		m.latency.Observe(elapsed)
		m.lastNs.Store(elapsed)
		m.inFlight.Dec()
	})
}

// boolParam reads a query parameter as a boolean with a default.
func boolParam(r *http.Request, name string, def bool) bool {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	switch strings.ToLower(v) {
	case "1", "true", "yes", "on":
		return true
	default:
		return false
	}
}

// readNTBody parses an N-Triples request body into a staging batch.
// Parsing happens *before* the write lock is taken, so a slow upload
// never stalls concurrent queries.
func readNTBody(r io.Reader) ([]rdf.Triple, error) {
	var batch []rdf.Triple
	rd := nt.NewReader(r)
	for {
		t, err := rd.Next()
		if err == io.EOF {
			return batch, nil
		}
		if err != nil {
			return nil, fmt.Errorf("parse: %v (after %d triples)", err, len(batch))
		}
		batch = append(batch, t)
	}
}

// handleLoad streams an N-Triples body into the base graph; only the
// in-memory apply/saturate/freeze happens inside the critical section.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) (int, error) {
	if st, err := s.refuseIfDegraded(w); st != 0 {
		return st, err
	}
	saturate := boolParam(r, "saturate", false)
	freeze := boolParam(r, "freeze", true)

	batch, err := readNTBody(r.Body)
	if err != nil {
		return http.StatusBadRequest, err
	}

	s.mu.Lock()
	ver0 := s.base.Version()
	instVer0 := s.inst.Version()
	added := 0
	for _, t := range batch {
		if s.base.Add(t) {
			added++
		}
	}
	if saturate {
		added += rdfs.Saturate(s.base)
	}
	if freeze {
		s.base.Freeze()
		if s.inst != s.base {
			s.inst.Freeze()
		}
	}
	if s.inst == s.base {
		// The serving instance may have changed — by the new triples, or
		// by a freeze-compaction of a previously pending delta even when
		// this body added nothing: maintain (or sweep) the registered
		// views before queries resume. A no-op when the version is
		// unchanged.
		s.reg.NotifyWrite()
	}
	var commit func() error
	if s.durable() && s.inst != s.base && s.inst.Version() != instVer0 {
		// The freeze also compacted the serving instance: its WAL must
		// re-baseline with it, so checkpoint everything (covers the base
		// write too).
		if err := s.checkpointLocked(); err != nil {
			s.mu.Unlock()
			return s.failDurable(w, "checkpoint", err)
		}
	} else {
		var err error
		if commit, err = s.stageWrite(r.Context(), s.base, ver0); err != nil {
			s.mu.Unlock()
			return s.failDurable(w, "wal append", err)
		}
	}
	s.maybeCompact(s.base) // a ?freeze=0 load can fill the overlay
	resp := LoadResponse{
		Added:   added,
		Triples: s.base.Len(),
		Frozen:  s.base.IsFrozen(),
	}
	s.mu.Unlock()
	// With group commit the fsync wait runs outside the write lock, so
	// concurrent loads share it; the 200 still only goes out once the
	// record is durable.
	if commit != nil {
		if err := commit(); err != nil {
			return s.failDurable(w, "wal append", err)
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

// handleInsert streams an N-Triples body into the serving instance (or
// the base graph with ?graph=base) as a delta write: on a frozen store
// the compacted indexes survive, the triples land in the sorted overlay,
// and the registered views are maintained through the delta feed inside
// the same critical section. This is the paper's maintenance economy as
// an endpoint — concurrent readers keep being served rewrites from
// materialized views across the write.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) (int, error) {
	if st, err := s.refuseIfDegraded(w); st != 0 {
		return st, err
	}
	batch, err := readNTBody(r.Body)
	if err != nil {
		return http.StatusBadRequest, err
	}

	// Writes are traced too (when armed): the spans cover the registry
	// maintenance and the WAL append + fsync.
	ctx := r.Context()
	var tr *obs.Trace
	if s.tracer.ShouldTrace() {
		ctx, tr = s.tracer.Start(ctx, "/insert")
		defer func() {
			if s.tracer.Finish(tr, slog.String("endpoint", "/insert")) {
				s.met.querySlo.Inc()
			}
		}()
	}

	s.mu.Lock()
	target := s.inst
	if r.URL.Query().Get("graph") == "base" {
		target = s.base
	}
	ver0 := target.Version()
	added := 0
	for _, t := range batch {
		if target.Add(t) {
			added++
		}
	}
	var maintained, invalidated int64
	if added > 0 && target == s.inst {
		nctx, nspan := obs.StartSpan(ctx, "viewreg.notify")
		before := s.reg.Stats()
		s.reg.NotifyWriteCtx(nctx)
		after := s.reg.Stats()
		maintained = after.Maintained - before.Maintained
		invalidated = after.Invalidations - before.Invalidations
		if nspan != nil {
			nspan.AttrInt("maintained", maintained)
			nspan.AttrInt("invalidated", invalidated)
			nspan.End()
		}
	}
	commit, err := s.stageWrite(ctx, target, ver0)
	if err != nil {
		s.mu.Unlock()
		return s.failDurable(w, "wal append", err)
	}
	s.maybeCompact(target)
	resp := InsertResponse{
		Added:       added,
		Triples:     target.Len(),
		Delta:       target.DeltaLen(),
		Frozen:      target.IsFrozen(),
		Maintained:  maintained,
		Invalidated: invalidated,
	}
	s.mu.Unlock()
	// The fsync wait runs outside the write lock when group commit is
	// armed — concurrent inserts stage in lock order and share one
	// fsync — and the 200 is still withheld until the record is durable.
	if commit != nil {
		if err := commit(); err != nil {
			return s.failDurable(w, "wal append", err)
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

// handleLoadSnapshot replaces the base graph from a binary snapshot.
// The serving instance and the view registry reset with it.
func (s *Server) handleLoadSnapshot(w http.ResponseWriter, r *http.Request) (int, error) {
	if st, err := s.refuseIfDegraded(w); st != 0 {
		return st, err
	}
	st, err := store.ReadSnapshotFrozen(r.Body)
	if err != nil {
		return http.StatusBadRequest, err
	}
	s.mu.Lock()
	s.base = st
	s.installInstance(st)
	triples := st.Len()
	var err2 error
	if s.durable() {
		err2 = s.checkpointLocked() // structural replacement: re-baseline
	}
	s.mu.Unlock()
	if err2 != nil {
		return s.failDurable(w, "checkpoint", err2)
	}
	s.writeJSON(w, http.StatusOK, LoadResponse{Added: triples, Triples: triples, Frozen: true})
	return http.StatusOK, nil
}

// handleSnapshot streams a binary snapshot of the base graph (or the
// serving instance with ?graph=instance).
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g := s.base
	if r.URL.Query().Get("graph") == "instance" {
		g = s.inst
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := g.WriteSnapshot(w); err != nil {
		// Headers are gone: abort the stream, but surface the failure in
		// the endpoint error metrics (zero status = do not render JSON).
		return 0, fmt.Errorf("snapshot stream: %w", err)
	}
	return http.StatusOK, nil
}

// handleMaterialize materializes an analytical schema over the base
// graph and installs the result as the serving instance. Saturation and
// freezing of the base happen before materialization can fail, so an
// errored request may still have grown the base graph by (monotone,
// semantically redundant) RDFS-entailed triples; re-POSTing after
// fixing the schema is always safe.
func (s *Server) handleMaterialize(w http.ResponseWriter, r *http.Request) (int, error) {
	if st, err := s.refuseIfDegraded(w); st != 0 {
		return st, err
	}
	var req SchemaRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return http.StatusBadRequest, err
	}
	schema, err := buildSchema(&req)
	if err != nil {
		return http.StatusBadRequest, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	satAdded := 0
	if req.Saturate {
		satAdded = rdfs.Saturate(s.base)
	}
	s.base.Freeze() // materialization queries run on the fast path
	inst, err := schema.Materialize(s.base)
	if err != nil {
		return http.StatusBadRequest, err
	}
	s.installInstance(inst)
	if s.durable() {
		// The serving instance changed shape: re-baseline everything
		// (base may have gained saturation triples and was frozen).
		if err := s.checkpointLocked(); err != nil {
			return s.failDurable(w, "checkpoint", err)
		}
	}
	s.writeJSON(w, http.StatusOK, MaterializeResponse{
		Name:            req.Name,
		InstanceTriples: inst.Len(),
		SaturationAdded: satAdded,
	})
	return http.StatusOK, nil
}

// handleFreeze compacts both graphs onto the read-optimized indexes. A
// compaction of a pending delta moves the serving instance's base epoch,
// so the registry is notified to sweep the now-unmaintainable views
// eagerly — keeping the byte accounting honest instead of waiting for
// lookups to prune them.
func (s *Server) handleFreeze(w http.ResponseWriter, r *http.Request) (int, error) {
	if st, err := s.refuseIfDegraded(w); st != 0 {
		return st, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.base.Freeze()
	if s.inst != s.base {
		s.inst.Freeze()
	}
	s.reg.NotifyWrite()
	if s.durable() {
		// A compaction moved a base epoch: the WALs must re-baseline so
		// the log does not outlive the feed it describes.
		if err := s.checkpointLocked(); err != nil {
			return s.failDurable(w, "checkpoint", err)
		}
	}
	s.writeJSON(w, http.StatusOK, LoadResponse{Triples: s.base.Len(), Frozen: true})
	return http.StatusOK, nil
}

// handleCheckpoint (POST /snapshot) persists a full checkpoint to the
// data-dir: graph snapshots in the frozen v2 format, WALs trimmed to the
// pending delta tails, and the view-registry snapshot — the durable
// counterpart of GET /snapshot's byte stream.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) (int, error) {
	if !s.durable() {
		return http.StatusPreconditionFailed, fmt.Errorf("server has no data-dir (start with -data-dir)")
	}
	// Deliberately NOT refused while degraded: a manual checkpoint is an
	// operator-triggered re-arm attempt.
	resp, err := s.Checkpoint()
	if err != nil {
		return s.failDurable(w, "checkpoint", err)
	}
	s.deg.mu.Lock()
	if s.deg.active {
		// The checkpoint rewrote every durable artifact: durability is
		// re-armed, lift read-only mode without waiting for the timer.
		s.deg.active = false
		s.deg.reason, s.deg.lastErr = "", ""
	}
	s.deg.mu.Unlock()
	s.writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

// StatusClientClosedRequest is the non-standard (nginx-originated)
// status for a request whose client went away mid-evaluation.
const StatusClientClosedRequest = 499

// queryStatus maps an evaluation error to an HTTP status: deadline →
// 504 (the server gave up), client cancellation → 499 (the client did),
// anything else → 422.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	default:
		return http.StatusUnprocessableEntity
	}
}

// handleQuery answers an analytical query through the shared registry
// (or directly, when requested). The evaluation runs under the request
// context, bounded by Config.QueryTimeout: a disconnecting client or an
// elapsed deadline cancels the operator pipeline cooperatively.
//
// ?explain=analyze traces this request (regardless of Config.TraceAll)
// and attaches the finished span tree — per-operator timings, row and
// seek counts — to the response. The result rows are the ones the
// evaluation produced either way; explain only observes.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) (int, error) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return http.StatusBadRequest, err
	}
	q, err := buildQuery(&req)
	if err != nil {
		return http.StatusBadRequest, err
	}
	explain := strings.EqualFold(r.URL.Query().Get("explain"), "analyze")
	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}
	var tr *obs.Trace
	if explain || s.tracer.ShouldTrace() {
		ctx, tr = s.tracer.Start(ctx, "/query")
	}
	finish := func(attrs ...slog.Attr) {
		if s.tracer.Finish(tr, attrs...) {
			s.met.querySlo.Inc()
		}
	}
	// Every query carries a cost accumulator — with or without tracing —
	// so the workload profiler and cost-based admission always see real
	// numbers. The accumulator is context-keyed; evaluation paths that
	// never look it up pay nothing.
	ctx, qcost := obs.WithCost(ctx)
	fp := viewreg.Fingerprint(q)
	tr.SetFingerprint(fp)

	s.mu.RLock()
	defer s.mu.RUnlock()
	t0 := time.Now()
	var (
		cube     *algebra.Relation
		strategy viewreg.Strategy
	)
	if req.Direct {
		c, err := s.reg.Evaluator().WithContext(ctx).Answer(q)
		if err != nil {
			st := queryStatus(err)
			finish(slog.String("endpoint", "/query"), slog.Int("status", st),
				slog.String("err", err.Error()))
			return st, err
		}
		cube, strategy = c, viewreg.StrategyDirect
	} else {
		c, strat, err := s.reg.AnswerCtx(ctx, q)
		if err != nil {
			st := queryStatus(err)
			finish(slog.String("endpoint", "/query"), slog.Int("status", st),
				slog.String("err", err.Error()))
			return st, err
		}
		cube, strategy = c, strat
	}
	_, rspan := obs.StartSpan(ctx, "render")
	elapsed := time.Since(t0).Nanoseconds()
	s.met.queries[strategy].Observe(elapsed)
	resp := renderCube(cube, s.inst.Dict(), strategy, elapsed)
	rspan.End()
	qcost.AddWallNs(elapsed)
	snap := qcost.Snapshot()
	s.workload.Record(fp, q.String(), string(strategy), snap)
	finish(slog.String("endpoint", "/query"), slog.String("strategy", string(strategy)),
		slog.Int64("rows_scanned", snap.RowsScanned),
		slog.Int64("rows_produced", snap.RowsProduced),
		slog.Int64("seeks", snap.Seeks),
		slog.Int64("batches", snap.Batches),
		slog.Int64("bytes", snap.Bytes))
	if explain && tr != nil {
		dump := tr.Dump()
		resp.TraceID = dump.ID
		resp.Explain = dump.Root
		resp.Cost = &snap
	}
	w.Header().Set("X-RDFCube-Cost", snap.HeaderString())
	s.writeJSONT(w, http.StatusOK, resp, tr)
	return http.StatusOK, nil
}

// handleStatsz reports registry, graph and endpoint statistics.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) (int, error) {
	// Store fields (size, frozen state) are written by the load/
	// materialize endpoints, so they must be read under the lock; the
	// registry snapshot is internally synchronized.
	s.mu.RLock()
	graphStats := func(g *store.Store) GraphStats {
		v := g.Version()
		return GraphStats{
			Triples:      g.Len(),
			Frozen:       g.IsFrozen(),
			Epoch:        g.Epoch(),
			BaseEpoch:    v.Base,
			DeltaSeq:     v.Seq,
			DeltaTriples: g.DeltaLen(),
		}
	}
	baseStats := graphStats(s.base)
	instStats := graphStats(s.inst)
	var mmap *MmapStats
	if ms, ok := s.base.MappedStats(); ok {
		runTriples, runBytes, spills, _ := s.base.SpillStats()
		mmap = &MmapStats{
			Path:             ms.Path,
			MappedBytes:      ms.MappedBytes,
			BlockCacheHits:   ms.BlockCacheHits,
			BlockCacheMisses: ms.BlockCacheMisses,
			TermCacheHits:    ms.TermCacheHits,
			TermCacheMisses:  ms.TermCacheMisses,
			DecodeStallNs:    ms.DecodeStallNanos,
			SpillRunTriples:  runTriples,
			SpillRunBytes:    runBytes,
			Spills:           spills,
		}
	}
	reg := s.reg
	s.mu.RUnlock()
	rs := reg.Stats()
	strategies := make(map[string]int64, len(rs.ByStrategy))
	for k, v := range rs.ByStrategy {
		strategies[string(k)] = v
	}
	for _, k := range viewreg.Strategies {
		if _, ok := strategies[string(k)]; !ok {
			strategies[string(k)] = 0
		}
	}
	resp := StatsResponse{
		UptimeNs: time.Since(s.start).Nanoseconds(),
		Base:     baseStats,
		Instance: instStats,
		Registry: RegStats{
			Entries:           rs.Entries,
			Bytes:             rs.Bytes,
			MaxBytes:          s.cfg.MaxViewBytes,
			Evictions:         rs.Evictions,
			Invalidations:     rs.Invalidations,
			Coalesced:         rs.Coalesced,
			CoalescedRewrites: rs.CoalescedRewrites,
			Maintained:        rs.Maintained,
			LazyUpgrades:      rs.LazyUpgrades,
			NegSkips:          rs.NegSkips,
			Admitted:          rs.Admitted,
			Refused:           rs.Refused,
			Strategies:        strategies,
		},
		Workload:              s.workload.Snapshot(),
		BackgroundCompactions: s.met.bgCompactions.Value(),
		Panics:                s.met.panics.Value(),
		Shed:                  s.met.shed.Value(),
		Mmap:                  mmap,
		Endpoints:             map[string]EndpointStats{},
	}
	if s.durable() {
		d := s.dur
		d.mu.Lock()
		ds := &DurabilityStats{
			DataDir:          d.dir,
			Checkpoints:      d.checkpoints,
			LastCheckpointNs: d.lastCheckpointNs,
			PersistedViews:   d.lastViews,
			WALAppendErrors:  d.walFailures,
			CheckpointErrors: d.checkpointErrors,
			RecoveredSnap:    d.recoveredSnap,
			RecoveredBatches: d.recoveredBatches,
			RecoveredTriples: d.recoveredTriples,
			RecoveredViews:   d.recoveredViews,
		}
		d.mu.Unlock()
		s.deg.mu.Lock()
		ds.Degraded = s.deg.active
		ds.DegradedReason = s.deg.reason
		ds.DegradedRetries = s.deg.retries
		ds.LastError = s.deg.lastErr
		if s.deg.active {
			ds.NextRetryNs = time.Until(s.deg.nextRetry).Nanoseconds()
		}
		s.deg.mu.Unlock()
		s.mu.RLock()
		if d.baseWAL != nil {
			ds.WALBatches += d.baseWAL.Batches()
			ds.WALBytes += d.baseWAL.Bytes()
			gs, gc := d.baseWAL.GroupStats()
			ds.WALGroupSyncs += gs
			ds.WALGroupCoalesced += gc
		}
		if d.instWAL != nil {
			ds.WALBatches += d.instWAL.Batches()
			ds.WALBytes += d.instWAL.Bytes()
			gs, gc := d.instWAL.GroupStats()
			ds.WALGroupSyncs += gs
			ds.WALGroupCoalesced += gc
		}
		s.mu.RUnlock()
		resp.Durability = ds
	}
	// /statsz is a JSON view over the same registry /metrics exposes:
	// the per-endpoint numbers come straight from the lock-free
	// collectors, with the histogram supplying the latency quantiles
	// the old avg-only bookkeeping could not.
	s.epMu.Lock()
	routes := make(map[string]*endpointMetrics, len(s.endpoints))
	for route, m := range s.endpoints {
		routes[route] = m
	}
	s.epMu.Unlock()
	for route, m := range routes {
		count := m.count.Value()
		es := EndpointStats{
			Count:    count,
			Errors:   m.errors.Value(),
			TotalNs:  m.latency.Sum(),
			MaxNs:    m.latency.Max(),
			LastNs:   m.lastNs.Load(),
			P50Ns:    m.latency.Quantile(0.50),
			P90Ns:    m.latency.Quantile(0.90),
			P99Ns:    m.latency.Quantile(0.99),
			InFlight: int64(m.inFlight.Value()),
		}
		if count > 0 {
			es.AvgNs = es.TotalNs / count
		}
		resp.Endpoints[route] = es
	}
	s.writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) (int, error) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	return http.StatusOK, nil
}
