package bgp

// Batch-engine tests: differential coverage of the streamed chain steps
// (every permutation a stream can ride, including the PSO index), the
// sort property the pipeline declares on its results, and the
// ordering-aware projection fast paths.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rdfcube/internal/dict"
	"rdfcube/internal/sparql"
)

// streamShapes target the stream-step specialization: after the seed
// binds the key variable, each trailing pattern has one bound key,
// constants elsewhere and at most one free tail — one shape per
// permutation the planner can stream over.
var streamShapes = []struct{ name, query string }{
	{"pso-tail", "q(x, w) :- x :a0 :v0, x :a1 w"},           // key S, tail O → PSO
	{"pos-tail", "q(x, y) :- x :a0 :v0, y :next x"},         // key O, tail S → POS
	{"osp-tail", "q(x, p) :- x :a0 :v0, x p :v1"},           // key S, tail P → OSP
	{"spo-tail", "q(p, w) :- :s1 p :v0, :s2 p w"},           // key P, tail O → SPO
	{"existence", "q(x, y) :- x :next y, y :a0 :v0"},        // key + 2 consts, no tail
	{"double-stream", "q(x, z, w) :- x :next y, y :next z, z :a0 w"},
}

// TestBatchStreamDifferential: the stream shapes must be byte-identical
// across the batch engine, the row pipeline and the nested reference,
// on frozen-only and frozen+delta stores, set and bag semantics.
func TestBatchStreamDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	for trial := 0; trial < 10; trial++ {
		for _, split := range []bool{false, true} {
			st := diffGraph(rng, 150+rng.Intn(250), split)
			for _, shape := range streamShapes {
				q := sparql.MustParseDatalog(shape.query, px())
				for _, bag := range []bool{false, true} {
					label := fmt.Sprintf("trial %d split=%v %s bag=%v", trial, split, shape.name, bag)
					cur, ref := evalBoth(t, st, q, bag)
					requireIdentical(t, label, cur, ref)
				}
			}
		}
	}
}

// TestBatchStreamPlans pins the shapes to the stream operator on a
// frozen store — a planner regression would silently demote the matrix
// above to nested-vs-nested.
func TestBatchStreamPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	st := diffGraph(rng, 400, false)
	for _, shape := range streamShapes {
		ops, err := Explain(st, sparql.MustParseDatalog(shape.query, px()))
		if err != nil {
			t.Fatal(err)
		}
		plan := strings.Join(ops, ",")
		if !strings.Contains(plan, "stream") {
			t.Errorf("%s: plan %q has no stream step", shape.name, plan)
		}
	}
}

// TestBatchSortedProperty: the batch engine must deliver rows already
// sorted by the order it declares in Result.Sorted — strictly, when it
// claims Strict — without any post-hoc SortRows.
func TestBatchSortedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	st := diffGraph(rng, 500, false)
	queries := []string{
		"q(x, y, z) :- x :next y, y :next z",
		"q(x, w) :- x :a0 :v0, x :a1 :v1, x :a2 w",
		"q(x) :- x :a0 :v0, x :a1 :v1",
		"q(x, y) :- x :a0 :v0, x :a1 :v1, y :a2 :v2, y :a3 :v3",
	}
	for _, src := range queries {
		q := sparql.MustParseDatalog(src, px())
		for _, bag := range []bool{false, true} {
			res, err := Eval(st, q, Options{Distinct: !bag})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Sorted) == 0 {
				t.Fatalf("%s bag=%v: batch result declares no sort property", src, bag)
			}
			cols := make([]int, len(res.Sorted))
			for i, v := range res.Sorted {
				cols[i] = -1
				for j, hv := range res.Vars {
					if hv == v {
						cols[i] = j
						break
					}
				}
				if cols[i] < 0 {
					t.Fatalf("%s bag=%v: sorted var %q not among result vars %v", src, bag, v, res.Vars)
				}
			}
			for i := 1; i < res.Len(); i++ {
				c := compareOn(res.Rows[i-1], res.Rows[i], cols)
				if c > 0 {
					t.Fatalf("%s bag=%v: rows %d,%d out of declared order %v", src, bag, i-1, i, res.Sorted)
				}
				if c == 0 && res.Strict {
					t.Fatalf("%s bag=%v: equal keys at rows %d,%d despite Strict", src, bag, i-1, i)
				}
			}
		}
	}
}

func compareOn(a, b []dict.ID, cols []int) int {
	for _, c := range cols {
		if a[c] != b[c] {
			if a[c] < b[c] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// TestSortedProjectionHelpers covers the ordering-aware distinct fast
// paths: full coverage skips the dedup entirely, a sorted-prefix
// projection dedups adjacent runs, anything else falls back to hashing.
func TestSortedProjectionHelpers(t *testing.T) {
	r := &Result{Sorted: []string{"y", "x"}, Strict: true}
	if !r.sortedCovers([]string{"x", "y", "z"}) {
		t.Fatal("sortedCovers must accept a superset of the sorted vars")
	}
	if r.sortedCovers([]string{"x"}) {
		t.Fatal("sortedCovers must reject when a sorted var is projected away")
	}
	if (&Result{Sorted: []string{"y", "x"}}).sortedCovers([]string{"x", "y"}) {
		t.Fatal("sortedCovers requires Strict")
	}
	if k := r.sortedRunPrefix([]string{"x", "y"}); k != 2 {
		t.Fatalf("sortedRunPrefix = %d, want 2 (set equality with Sorted[:2])", k)
	}
	if k := r.sortedRunPrefix([]string{"y"}); k != 1 {
		t.Fatalf("sortedRunPrefix = %d, want 1", k)
	}
	if k := r.sortedRunPrefix([]string{"x"}); k != 0 {
		t.Fatalf("sortedRunPrefix = %d, want 0 (x is not the leading sorted var)", k)
	}
	if k := r.sortedRunPrefix([]string{"x", "z"}); k != 0 {
		t.Fatalf("sortedRunPrefix = %d, want 0 (z unsorted)", k)
	}

	rows := [][]dict.ID{{1, 1}, {1, 1}, {1, 2}, {2, 2}, {2, 2}, {2, 2}, {3, 1}}
	got := dedupAdjacentRows(rows)
	want := [][]dict.ID{{1, 1}, {1, 2}, {2, 2}, {3, 1}}
	if len(got) != len(want) {
		t.Fatalf("dedupAdjacentRows kept %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if !idRowsEqual(got[i], want[i]) {
			t.Fatalf("row %d: %v, want %v", i, got[i], want[i])
		}
	}
}
