package bgp

// Physical planning: evalBody executes a pipeline of join steps, and
// this file decides what each step is. Three operators exist:
//
//	nested    index-nested-loop probe of one pattern per input row —
//	          the always-applicable baseline, and the only operator on
//	          an unfrozen (map-indexed) store;
//	merge     sort-merge intersection of two pattern cursors sharing a
//	          join variable;
//	leapfrog  leapfrog-triejoin intersection of k >= 3 cursors sharing
//	          one variable — the star-pattern operator.
//
// The cursor operators apply when the ordering works out: a pattern can
// feed a sorted cursor keyed on variable v exactly when v occupies one
// position and every other position is a constant or an already-bound
// variable — the pattern then instantiates (per input row) to a
// two-bound range of one frozen permutation whose third column is v's
// run, sorted and duplicate-free (see store.Cursor). That is the
// sortedness propagation rule: binding variables upstream turns more
// patterns cursor-eligible downstream, so a star query whose center is
// bound by step 1 can still merge-join its rays in step 2.
//
// Operator choice per step is bound-aware and greedy: a cursor group of
// k eligible patterns replaces k nested-loop steps whenever one exists
// (the intersection visits at most the smallest cursor and seeks over
// the rest, so it never does more work than probing the same patterns
// row by row, and it binds the join variable once instead of growing
// intermediate results); among competing groups the planner prefers
// more patterns, then the smaller bound-aware cardinality estimate.
// Groups disconnected from the bound variables are deferred exactly
// like nested cross products. Everything else keeps the pre-existing
// greedy nested order (cheapest bound-aware estimate first on a frozen
// store, most-bound-first on the maps).

import (
	"strings"

	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// stepKind names a physical join operator.
type stepKind uint8

const (
	opNested stepKind = iota
	opMerge
	opLeapfrog
	// opStream is the batch engine's streamed probe: a pattern whose
	// key variable is already bound and whose other positions are
	// constants (plus at most one free tail variable) is executed with
	// ONE shared cursor per input batch — the batch's key values are
	// visited in sorted order, the cursor gallops between them, and the
	// tail run is enumerated per key. The row pipeline executes the same
	// step as a nested probe (identical results), so stream is a pure
	// execution-strategy tag over the nested plan shape.
	opStream
)

func (k stepKind) String() string {
	switch k {
	case opMerge:
		return "merge"
	case opLeapfrog:
		return "leapfrog"
	case opStream:
		return "stream"
	default:
		return "nested"
	}
}

// planStep is one pipeline stage: a single pattern probed by nested
// loop, a cursor group intersected on joinVar, or a streamed probe
// keyed on joinVar.
type planStep struct {
	kind    stepKind
	pats    []int // indexes into compiled; len 1 for nested/stream
	joinVar int   // the variable a merge/leapfrog step binds; the bound key of a stream step
	tail    int   // stream only: the free tail variable bound per key run, or -1
	pso     bool  // stream only: the shared cursor needs the PSO permutation
}

// planPipeline orders the patterns into executable steps. forceNested
// pins every step to the nested-loop operator (differential testing).
func planPipeline(st *store.Store, compiled []compiledPattern, nVars int, forceNested bool) []planStep {
	n := len(compiled)
	used := make([]bool, n)
	bound := make([]bool, nVars)
	steps := make([]planStep, 0, n)
	frozen := st.IsFrozen()
	cursors := frozen && !forceNested
	var static []float64
	if !frozen {
		static = make([]float64, n)
		for i := range compiled {
			static[i] = compiled[i].boundEstimate(st, bound) // nothing bound: static
		}
	}
	remaining := n
	for remaining > 0 {
		// Greedy nested pick (the pre-cursor planOrder logic) — also the
		// cost yardstick a cursor group must beat.
		best := -1
		bestConn := false
		bestEst := 0.0
		bestNB := -1
		for i := range compiled {
			if used[i] {
				continue
			}
			if frozen {
				conn := compiled[i].connected(bound)
				est := compiled[i].boundEstimate(st, bound)
				if best < 0 || (conn && !bestConn) || (conn == bestConn && est < bestEst) {
					best, bestConn, bestEst = i, conn, est
				}
			} else {
				nb := compiled[i].nBound(bound)
				if best < 0 || nb > bestNB || (nb == bestNB && static[i] < bestEst) {
					best, bestNB, bestEst = i, nb, static[i]
				}
			}
		}
		if cursors {
			// A group touching the bound variables is a candidate; a
			// disconnected one (a cross-product) is deferred like a
			// disconnected pattern, but once only disconnected work
			// remains the intersection still beats probing the same
			// patterns row by row. The group wins only if its smallest
			// member is at most as selective as the nested pick — its
			// output is bounded by that member, so on ties and better it
			// can't lose; a strictly cheaper outside pattern (say a
			// one-row lookup next to two huge rays) seeds first instead,
			// and the group is reconsidered with more variables bound.
			pats, v, est, ok := bestCursorGroup(st, compiled, used, bound, nVars, true)
			if !ok && !anyConnectedLeft(compiled, used, bound) {
				pats, v, est, ok = bestCursorGroup(st, compiled, used, bound, nVars, false)
			}
			if ok && est <= bestEst {
				kind := opMerge
				if len(pats) >= 3 {
					kind = opLeapfrog
				}
				steps = append(steps, planStep{kind: kind, pats: pats, joinVar: v, tail: -1})
				for _, pi := range pats {
					used[pi] = true
					compiled[pi].markBound(bound)
				}
				remaining -= len(pats)
				continue
			}
		}
		used[best] = true
		stp := planStep{kind: opNested, pats: []int{best}, tail: -1}
		if cursors {
			if v, tail, pso, ok := compiled[best].streamEligible(bound); ok {
				stp.kind, stp.joinVar, stp.tail, stp.pso = opStream, v, tail, pso
			}
		}
		steps = append(steps, stp)
		compiled[best].markBound(bound)
		remaining--
	}
	return steps
}

// streamEligible reports whether the pattern can be executed as a
// streamed probe under the current bound set: one bound "key" variable
// v, every other position a compile-time constant, and at most one free
// tail variable — provided a permutation exists whose column order is
// (constants..., v, tail). With two constants any permutation's
// pairRange works (the generic cursor keys on the strict third column);
// with one constant and a tail the feasible shapes are
//
//	P const, key O, tail S -> POS     P const, key S, tail O -> PSO
//	O const, key S, tail P -> OSP     S const, key P, tail O -> SPO
//
// (the PSO case is why the fourth permutation exists). Bound variables
// other than v disqualify — their values differ per row, so no single
// cursor range covers the batch.
func (cp *compiledPattern) streamEligible(bound []bool) (v, tail int, pso, ok bool) {
	v, tail = -1, -1
	nConst := 0
	var constPos, keyPos, tailPos int
	for pos, pv := range [3]int{cp.varS, cp.varP, cp.varO} {
		switch {
		case pv < 0:
			nConst++
			constPos = pos
		case bound[pv]:
			if v >= 0 { // a second bound variable (or v repeated)
				return -1, -1, false, false
			}
			v, keyPos = pv, pos
		default:
			if tail >= 0 { // two free positions (or one free var repeated)
				return -1, -1, false, false
			}
			tail, tailPos = pv, pos
		}
	}
	if v < 0 {
		return -1, -1, false, false
	}
	if tail < 0 {
		return v, -1, false, nConst == 2
	}
	if nConst != 1 || tail == v {
		return -1, -1, false, false
	}
	// One constant, one key, one tail: check shape feasibility.
	const pS, pP, pO = 0, 1, 2
	switch {
	case constPos == pP && keyPos == pO && tailPos == pS: // POS
		return v, tail, false, true
	case constPos == pP && keyPos == pS && tailPos == pO: // PSO
		return v, tail, true, true
	case constPos == pO && keyPos == pS && tailPos == pP: // OSP
		return v, tail, false, true
	case constPos == pS && keyPos == pP && tailPos == pO: // SPO
		return v, tail, false, true
	}
	return -1, -1, false, false
}

// cursorEligible reports whether the pattern can feed a sorted cursor
// keyed on variable v under the current bound set: v occupies exactly
// one position and every other position is a constant or bound.
func (cp *compiledPattern) cursorEligible(v int, bound []bool) bool {
	occ := 0
	for _, pv := range [3]int{cp.varS, cp.varP, cp.varO} {
		switch {
		case pv == v:
			occ++
		case pv >= 0 && !bound[pv]:
			return false
		}
	}
	return occ == 1
}

// anyConnectedLeft reports whether an unused pattern touches a bound
// variable.
func anyConnectedLeft(compiled []compiledPattern, used, bound []bool) bool {
	for i := range compiled {
		if !used[i] && compiled[i].connected(bound) {
			return true
		}
	}
	return false
}

// bestCursorGroup finds the cursor group to intersect next: for each
// unbound variable v, the unused patterns eligible for a v-keyed cursor
// form a candidate group; groups of at least two patterns compete on
// size (more patterns intersect tighter), then on the smallest member's
// bound-aware cardinality estimate, which is also returned (the group's
// output bound, compared against the nested alternative). With
// requireConn, groups touching none of the already-bound variables are
// skipped (the cross-product deferral); before anything is bound every
// group qualifies.
func bestCursorGroup(st *store.Store, compiled []compiledPattern, used, bound []bool, nVars int, requireConn bool) ([]int, int, float64, bool) {
	anyBound := false
	for _, b := range bound {
		if b {
			anyBound = true
			break
		}
	}
	var best []int
	bestVar := -1
	bestEst := 0.0
	for v := 0; v < nVars; v++ {
		if bound[v] {
			continue
		}
		var g []int
		conn := !anyBound
		minEst := -1.0
		for i := range compiled {
			if used[i] || !compiled[i].cursorEligible(v, bound) {
				continue
			}
			g = append(g, i)
			if compiled[i].connected(bound) {
				conn = true
			}
			if e := compiled[i].boundEstimate(st, bound); minEst < 0 || e < minEst {
				minEst = e
			}
		}
		if len(g) < 2 || (requireConn && !conn) {
			continue
		}
		if best == nil || len(g) > len(best) || (len(g) == len(best) && minEst < bestEst) {
			best, bestVar, bestEst = g, v, minEst
		}
	}
	return best, bestVar, bestEst, best != nil
}

// freeVarOrder returns the pattern's unbound variables in the column
// order of the permutation patternRange resolves the instantiated
// pattern to — the order a nested probe emits its bindings in, which is
// what makes the sort property below composable. Repeated variables are
// deduped keeping the first occurrence (rows sorted on (x, x) are
// sorted on x).
func (cp *compiledPattern) freeVarOrder(bound []bool) []int {
	isB := func(pv int) bool { return pv < 0 || bound[pv] }
	sB, pB, oB := isB(cp.varS), isB(cp.varP), isB(cp.varO)
	var posOrder []int // positions 0=S 1=P 2=O, in permutation column order
	switch {
	case sB && pB:
		if !oB {
			posOrder = []int{2} // SPO pair run: free O
		}
	case pB:
		if oB {
			posOrder = []int{0} // POS pair run: free S
		} else {
			posOrder = []int{2, 0} // POS key run: free (O, S)
		}
	case oB:
		if sB {
			posOrder = []int{1} // OSP pair run: free P
		} else {
			posOrder = []int{0, 1} // OSP key run: free (S, P)
		}
	case sB:
		posOrder = []int{1, 2} // SPO key run: free (P, O)
	default:
		posOrder = []int{0, 1, 2} // full SPO scan
	}
	vars := [3]int{cp.varS, cp.varP, cp.varO}
	var out []int
	for _, pos := range posOrder {
		pv := vars[pos]
		dup := false
		for _, x := range out {
			if x == pv {
				dup = true
			}
		}
		if !dup {
			out = append(out, pv)
		}
	}
	return out
}

// planSorted derives the sort property of the batch pipeline's output:
// the variable prefix its rows are lexicographically ordered by, and
// whether that ordering is strict (no two rows share the prefix). Every
// operator emits in input order and appends its own bindings in sorted
// order — a group step its strictly-increasing join keys, a stream step
// its ascending tail run, a nested probe its free variables in the
// probe permutation's column order — so the plan's full binding order
// IS a strict lexicographic order of the result. Ordering-aware
// DISTINCT and GROUP BY (project.go, algebra) run off this property.
func planSorted(compiled []compiledPattern, steps []planStep, nv int) (order []int, strict bool) {
	bound := make([]bool, nv)
	for _, stp := range steps {
		switch stp.kind {
		case opMerge, opLeapfrog:
			order = append(order, stp.joinVar)
		case opStream:
			if stp.tail >= 0 {
				order = append(order, stp.tail)
			}
		default:
			order = append(order, compiled[stp.pats[0]].freeVarOrder(bound)...)
		}
		markStepBound(compiled, stp, bound)
	}
	return order, true
}

// sortedLabel renders a sort property for Explain and trace spans:
// "sorted!(x,y)" when strict, "sorted(x,y)" otherwise.
func sortedLabel(order []int, strict bool, vars []string) string {
	names := make([]string, len(order))
	for i, v := range order {
		names[i] = vars[v]
	}
	bang := ""
	if strict {
		bang = "!"
	}
	return "sorted" + bang + "(" + strings.Join(names, ",") + ")"
}

// Explain returns the physical operators of the plan for q's body in
// execution order — "nested", "merge", "leapfrog", "stream" — for
// diagnostics, benchmarks and tests. On a frozen store (where the batch
// engine runs) a final "sorted!(x,y)" element names the sort property
// the pipeline's output obeys. A query with an unknown constant (empty
// result) explains as an empty plan.
func Explain(st *store.Store, q *sparql.Query) ([]string, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	compiled, vars, err := compile(st, q.Patterns)
	if err != nil || compiled == nil {
		return nil, err
	}
	steps := planPipeline(st, compiled, len(vars), false)
	out := make([]string, len(steps))
	for i, s := range steps {
		out[i] = s.kind.String()
	}
	if st.IsFrozen() {
		order, strict := planSorted(compiled, steps, len(vars))
		out = append(out, sortedLabel(order, strict, vars))
	}
	return out, nil
}
