package bgp

// Physical planning: evalBody executes a pipeline of join steps, and
// this file decides what each step is. Three operators exist:
//
//	nested    index-nested-loop probe of one pattern per input row —
//	          the always-applicable baseline, and the only operator on
//	          an unfrozen (map-indexed) store;
//	merge     sort-merge intersection of two pattern cursors sharing a
//	          join variable;
//	leapfrog  leapfrog-triejoin intersection of k >= 3 cursors sharing
//	          one variable — the star-pattern operator.
//
// The cursor operators apply when the ordering works out: a pattern can
// feed a sorted cursor keyed on variable v exactly when v occupies one
// position and every other position is a constant or an already-bound
// variable — the pattern then instantiates (per input row) to a
// two-bound range of one frozen permutation whose third column is v's
// run, sorted and duplicate-free (see store.Cursor). That is the
// sortedness propagation rule: binding variables upstream turns more
// patterns cursor-eligible downstream, so a star query whose center is
// bound by step 1 can still merge-join its rays in step 2.
//
// Operator choice per step is bound-aware and greedy: a cursor group of
// k eligible patterns replaces k nested-loop steps whenever one exists
// (the intersection visits at most the smallest cursor and seeks over
// the rest, so it never does more work than probing the same patterns
// row by row, and it binds the join variable once instead of growing
// intermediate results); among competing groups the planner prefers
// more patterns, then the smaller bound-aware cardinality estimate.
// Groups disconnected from the bound variables are deferred exactly
// like nested cross products. Everything else keeps the pre-existing
// greedy nested order (cheapest bound-aware estimate first on a frozen
// store, most-bound-first on the maps).

import (
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// stepKind names a physical join operator.
type stepKind uint8

const (
	opNested stepKind = iota
	opMerge
	opLeapfrog
)

func (k stepKind) String() string {
	switch k {
	case opMerge:
		return "merge"
	case opLeapfrog:
		return "leapfrog"
	default:
		return "nested"
	}
}

// planStep is one pipeline stage: a single pattern probed by nested
// loop, or a cursor group intersected on joinVar.
type planStep struct {
	kind    stepKind
	pats    []int // indexes into compiled; len 1 for nested
	joinVar int   // the variable a merge/leapfrog step binds
}

// planPipeline orders the patterns into executable steps. forceNested
// pins every step to the nested-loop operator (differential testing).
func planPipeline(st *store.Store, compiled []compiledPattern, nVars int, forceNested bool) []planStep {
	n := len(compiled)
	used := make([]bool, n)
	bound := make([]bool, nVars)
	steps := make([]planStep, 0, n)
	frozen := st.IsFrozen()
	cursors := frozen && !forceNested
	var static []float64
	if !frozen {
		static = make([]float64, n)
		for i := range compiled {
			static[i] = compiled[i].boundEstimate(st, bound) // nothing bound: static
		}
	}
	remaining := n
	for remaining > 0 {
		// Greedy nested pick (the pre-cursor planOrder logic) — also the
		// cost yardstick a cursor group must beat.
		best := -1
		bestConn := false
		bestEst := 0.0
		bestNB := -1
		for i := range compiled {
			if used[i] {
				continue
			}
			if frozen {
				conn := compiled[i].connected(bound)
				est := compiled[i].boundEstimate(st, bound)
				if best < 0 || (conn && !bestConn) || (conn == bestConn && est < bestEst) {
					best, bestConn, bestEst = i, conn, est
				}
			} else {
				nb := compiled[i].nBound(bound)
				if best < 0 || nb > bestNB || (nb == bestNB && static[i] < bestEst) {
					best, bestNB, bestEst = i, nb, static[i]
				}
			}
		}
		if cursors {
			// A group touching the bound variables is a candidate; a
			// disconnected one (a cross-product) is deferred like a
			// disconnected pattern, but once only disconnected work
			// remains the intersection still beats probing the same
			// patterns row by row. The group wins only if its smallest
			// member is at most as selective as the nested pick — its
			// output is bounded by that member, so on ties and better it
			// can't lose; a strictly cheaper outside pattern (say a
			// one-row lookup next to two huge rays) seeds first instead,
			// and the group is reconsidered with more variables bound.
			pats, v, est, ok := bestCursorGroup(st, compiled, used, bound, nVars, true)
			if !ok && !anyConnectedLeft(compiled, used, bound) {
				pats, v, est, ok = bestCursorGroup(st, compiled, used, bound, nVars, false)
			}
			if ok && est <= bestEst {
				kind := opMerge
				if len(pats) >= 3 {
					kind = opLeapfrog
				}
				steps = append(steps, planStep{kind: kind, pats: pats, joinVar: v})
				for _, pi := range pats {
					used[pi] = true
					compiled[pi].markBound(bound)
				}
				remaining -= len(pats)
				continue
			}
		}
		used[best] = true
		steps = append(steps, planStep{kind: opNested, pats: []int{best}})
		compiled[best].markBound(bound)
		remaining--
	}
	return steps
}

// cursorEligible reports whether the pattern can feed a sorted cursor
// keyed on variable v under the current bound set: v occupies exactly
// one position and every other position is a constant or bound.
func (cp *compiledPattern) cursorEligible(v int, bound []bool) bool {
	occ := 0
	for _, pv := range [3]int{cp.varS, cp.varP, cp.varO} {
		switch {
		case pv == v:
			occ++
		case pv >= 0 && !bound[pv]:
			return false
		}
	}
	return occ == 1
}

// anyConnectedLeft reports whether an unused pattern touches a bound
// variable.
func anyConnectedLeft(compiled []compiledPattern, used, bound []bool) bool {
	for i := range compiled {
		if !used[i] && compiled[i].connected(bound) {
			return true
		}
	}
	return false
}

// bestCursorGroup finds the cursor group to intersect next: for each
// unbound variable v, the unused patterns eligible for a v-keyed cursor
// form a candidate group; groups of at least two patterns compete on
// size (more patterns intersect tighter), then on the smallest member's
// bound-aware cardinality estimate, which is also returned (the group's
// output bound, compared against the nested alternative). With
// requireConn, groups touching none of the already-bound variables are
// skipped (the cross-product deferral); before anything is bound every
// group qualifies.
func bestCursorGroup(st *store.Store, compiled []compiledPattern, used, bound []bool, nVars int, requireConn bool) ([]int, int, float64, bool) {
	anyBound := false
	for _, b := range bound {
		if b {
			anyBound = true
			break
		}
	}
	var best []int
	bestVar := -1
	bestEst := 0.0
	for v := 0; v < nVars; v++ {
		if bound[v] {
			continue
		}
		var g []int
		conn := !anyBound
		minEst := -1.0
		for i := range compiled {
			if used[i] || !compiled[i].cursorEligible(v, bound) {
				continue
			}
			g = append(g, i)
			if compiled[i].connected(bound) {
				conn = true
			}
			if e := compiled[i].boundEstimate(st, bound); minEst < 0 || e < minEst {
				minEst = e
			}
		}
		if len(g) < 2 || (requireConn && !conn) {
			continue
		}
		if best == nil || len(g) > len(best) || (len(g) == len(best) && minEst < bestEst) {
			best, bestVar, bestEst = g, v, minEst
		}
	}
	return best, bestVar, bestEst, best != nil
}

// Explain returns the physical operators of the plan for q's body in
// execution order — "nested", "merge", "leapfrog" — for diagnostics,
// benchmarks and tests. A query with an unknown constant (empty result)
// explains as an empty plan.
func Explain(st *store.Store, q *sparql.Query) ([]string, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	compiled, vars, err := compile(st, q.Patterns)
	if err != nil || compiled == nil {
		return nil, err
	}
	steps := planPipeline(st, compiled, len(vars), false)
	out := make([]string, len(steps))
	for i, s := range steps {
		out[i] = s.kind.String()
	}
	return out, nil
}
