// Package bgp evaluates basic graph pattern queries against a triple
// store using index-nested-loop joins with greedy, statistics-driven
// pattern ordering.
//
// Results are tables of dictionary IDs. Evaluation computes every
// embedding of the body; projection onto the head happens afterwards,
// under either set semantics (distinct rows — the default for classifier
// queries) or bag semantics (all embeddings — required for measure
// queries, Section 2 of the paper).
package bgp

import (
	"fmt"
	"sort"

	"rdfcube/internal/dict"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// Result is a table of variable bindings.
type Result struct {
	// Vars names the columns.
	Vars []string
	// Rows holds one dict.ID per column per row.
	Rows [][]dict.ID
}

// Len reports the number of rows.
func (r *Result) Len() int { return len(r.Rows) }

// Column returns the index of variable name, or -1.
func (r *Result) Column(name string) int {
	for i, v := range r.Vars {
		if v == name {
			return i
		}
	}
	return -1
}

// Project returns a new result with only the named columns, in order.
// Under distinct, duplicate projected rows are collapsed (set semantics).
func (r *Result) Project(vars []string, distinct bool) (*Result, error) {
	cols := make([]int, len(vars))
	for i, v := range vars {
		c := r.Column(v)
		if c < 0 {
			return nil, fmt.Errorf("bgp: projection variable %q not in result", v)
		}
		cols[i] = c
	}
	out := &Result{Vars: append([]string(nil), vars...)}
	var seen map[string]struct{}
	if distinct {
		seen = make(map[string]struct{}, len(r.Rows))
	}
	for _, row := range r.Rows {
		proj := make([]dict.ID, len(cols))
		for i, c := range cols {
			proj[i] = row[c]
		}
		if distinct {
			k := rowKey(proj)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
		}
		out.Rows = append(out.Rows, proj)
	}
	return out, nil
}

// rowKey renders a row as a compact map key.
func rowKey(row []dict.ID) string {
	b := make([]byte, 0, len(row)*8)
	for _, id := range row {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(id>>s))
		}
	}
	return string(b)
}

// Options controls evaluation.
type Options struct {
	// Distinct selects set semantics for the head projection. When false,
	// every embedding contributes a row (bag semantics).
	Distinct bool
	// KeepAllVars retains every body variable instead of projecting onto
	// the head. Used to materialize m̄ (Definition 3) and intermediary
	// results.
	KeepAllVars bool
}

// Eval evaluates q against st under opts.
func Eval(st *store.Store, q *sparql.Query, opts Options) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	full, err := evalBody(st, q.Patterns)
	if err != nil {
		return nil, err
	}
	if opts.KeepAllVars {
		if opts.Distinct {
			return full.Project(full.Vars, true)
		}
		return full, nil
	}
	return full.Project(q.Head, opts.Distinct)
}

// EvalSet evaluates q with set semantics projected on the head — the
// default semantics of the paper's BGPs.
func EvalSet(st *store.Store, q *sparql.Query) (*Result, error) {
	return Eval(st, q, Options{Distinct: true})
}

// EvalBag evaluates q with bag semantics projected on the head — the
// semantics of measure queries.
func EvalBag(st *store.Store, q *sparql.Query) (*Result, error) {
	return Eval(st, q, Options{})
}

// evalBody computes all embeddings of the body patterns. The returned
// result has one column per body variable.
func evalBody(st *store.Store, patterns []sparql.TriplePattern) (*Result, error) {
	if len(patterns) == 0 {
		return &Result{}, nil
	}
	compiled, vars, err := compile(st, patterns)
	if err != nil {
		return nil, err
	}
	if compiled == nil {
		// A constant in the query is unknown to the dictionary: no triple
		// can match, so the result is empty.
		return &Result{Vars: vars, Rows: nil}, nil
	}
	order := planOrder(st, compiled, len(vars))

	result := &Result{Vars: vars}
	current := [][]dict.ID{make([]dict.ID, len(vars))} // one all-unbound row
	bound := make([]bool, len(vars))
	for _, pi := range order {
		cp := compiled[pi]
		var next [][]dict.ID
		for _, row := range current {
			pat, checks := cp.instantiate(row, bound)
			st.ForEach(pat, func(t store.IDTriple) bool {
				if !cp.accepts(t, row, bound, checks) {
					return true
				}
				nr := append([]dict.ID(nil), row...)
				cp.bind(t, nr)
				next = append(next, nr)
				return true
			})
		}
		current = next
		cp.markBound(bound)
		if len(current) == 0 {
			break
		}
	}
	result.Rows = current
	return result, nil
}

// compiledPattern is a triple pattern with constants resolved to IDs and
// variables resolved to column indexes (-1 means constant position).
type compiledPattern struct {
	constS, constP, constO dict.ID // valid when the var index is -1
	varS, varP, varO       int
}

// compile resolves patterns; it returns (nil, vars, nil) when a constant
// term is absent from the dictionary (empty result).
func compile(st *store.Store, patterns []sparql.TriplePattern) ([]compiledPattern, []string, error) {
	varIndex := map[string]int{}
	var vars []string
	idx := func(name string) int {
		if i, ok := varIndex[name]; ok {
			return i
		}
		i := len(vars)
		varIndex[name] = i
		vars = append(vars, name)
		return i
	}
	d := st.Dict()
	unknown := false
	resolve := func(n sparql.Node) (dict.ID, int) {
		if n.IsVar() {
			return store.Wild, idx(n.Var)
		}
		id, ok := d.Lookup(n.Term)
		if !ok {
			unknown = true
		}
		return id, -1
	}
	out := make([]compiledPattern, len(patterns))
	for i, tp := range patterns {
		var cp compiledPattern
		cp.constS, cp.varS = resolve(tp.S)
		cp.constP, cp.varP = resolve(tp.P)
		cp.constO, cp.varO = resolve(tp.O)
		out[i] = cp
	}
	if unknown {
		return nil, vars, nil
	}
	return out, vars, nil
}

// instantiate builds the store pattern for the current row: constant
// positions use their IDs, bound variables use the row value, unbound
// variables stay Wild. checks flags positions where the same unbound
// variable repeats within the pattern (e.g. x p x) and must be verified
// after matching.
func (cp *compiledPattern) instantiate(row []dict.ID, bound []bool) (store.Pattern, [3]bool) {
	var pat store.Pattern
	var checks [3]bool
	get := func(constID dict.ID, v int) dict.ID {
		if v < 0 {
			return constID
		}
		if bound[v] {
			return row[v]
		}
		return store.Wild
	}
	pat.S = get(cp.constS, cp.varS)
	pat.P = get(cp.constP, cp.varP)
	pat.O = get(cp.constO, cp.varO)
	// Repeated unbound variables inside one pattern need post-checks.
	if cp.varS >= 0 && !bound[cp.varS] {
		if cp.varP == cp.varS {
			checks[1] = true
		}
		if cp.varO == cp.varS {
			checks[2] = true
		}
	}
	if cp.varP >= 0 && !bound[cp.varP] && cp.varO == cp.varP {
		checks[2] = true
	}
	return pat, checks
}

// accepts verifies repeated-variable constraints for a matched triple.
func (cp *compiledPattern) accepts(t store.IDTriple, row []dict.ID, bound []bool, checks [3]bool) bool {
	if checks[1] && t.P != t.S {
		return false
	}
	if checks[2] {
		if cp.varO == cp.varS && t.O != t.S {
			return false
		}
		if cp.varO == cp.varP && t.O != t.P {
			return false
		}
	}
	return true
}

// bind writes the matched triple's values into the row.
func (cp *compiledPattern) bind(t store.IDTriple, row []dict.ID) {
	if cp.varS >= 0 {
		row[cp.varS] = t.S
	}
	if cp.varP >= 0 {
		row[cp.varP] = t.P
	}
	if cp.varO >= 0 {
		row[cp.varO] = t.O
	}
}

// markBound records the pattern's variables as bound.
func (cp *compiledPattern) markBound(bound []bool) {
	if cp.varS >= 0 {
		bound[cp.varS] = true
	}
	if cp.varP >= 0 {
		bound[cp.varP] = true
	}
	if cp.varO >= 0 {
		bound[cp.varO] = true
	}
}

// vars lists the pattern's variable columns.
func (cp *compiledPattern) patternVars() []int {
	var out []int
	for _, v := range []int{cp.varS, cp.varP, cp.varO} {
		if v >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// staticEstimate is the store's cardinality estimate ignoring bindings.
func (cp *compiledPattern) staticEstimate(st *store.Store) float64 {
	pat := store.Pattern{}
	if cp.varS < 0 {
		pat.S = cp.constS
	}
	if cp.varP < 0 {
		pat.P = cp.constP
	}
	if cp.varO < 0 {
		pat.O = cp.constO
	}
	return st.EstimateCardinality(pat)
}

// planOrder greedily orders patterns: repeatedly pick the pattern with
// the most already-bound variables (maximizing index use) breaking ties
// by the smallest static cardinality estimate. Disconnected patterns
// (cross products) are deferred until nothing connected remains.
func planOrder(st *store.Store, compiled []compiledPattern, nVars int) []int {
	n := len(compiled)
	used := make([]bool, n)
	bound := make([]bool, nVars)
	order := make([]int, 0, n)
	est := make([]float64, n)
	for i := range compiled {
		est[i] = compiled[i].staticEstimate(st)
	}
	for len(order) < n {
		best := -1
		bestBound := -1
		bestEst := 0.0
		for i := range compiled {
			if used[i] {
				continue
			}
			nb := 0
			for _, v := range compiled[i].patternVars() {
				if bound[v] {
					nb++
				}
			}
			// First pattern: pure estimate. Later: prefer connected.
			if best < 0 || nb > bestBound || (nb == bestBound && est[i] < bestEst) {
				best = i
				bestBound = nb
				bestEst = est[i]
			}
		}
		used[best] = true
		order = append(order, best)
		compiled[best].markBound(bound)
	}
	return order
}

// SortRows orders rows lexicographically in place; useful for
// deterministic output and comparisons in tests.
func (r *Result) SortRows() {
	sort.Slice(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
