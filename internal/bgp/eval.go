// Package bgp evaluates basic graph pattern queries against a triple
// store through a pipeline of physical join operators — index-nested-
// loop probes, sort-merge joins and leapfrog triejoins over the frozen
// store's ordered cursors — chosen per step by a greedy, statistics-
// driven planner (plan.go).
//
// Evaluation is parallel and allocation-lean: the first step's output
// (a pattern's matching range, or a cursor intersection) seeds the
// pipeline, the seeds are partitioned across workers (one per CPU by
// default), and each worker runs the remaining steps over its slice
// with rows carved out of a per-worker chunked arena; worker buffers
// are concatenated at the end. Join ordering uses bound-aware
// cardinality estimates fed by the store's offset directories (exact
// range counts on a frozen store). Wide projections and distinct
// filtering fan out the same way (project.go).
//
// Results are tables of dictionary IDs. Evaluation computes every
// embedding of the body; projection onto the head happens afterwards,
// under either set semantics (distinct rows — the default for classifier
// queries) or bag semantics (all embeddings — required for measure
// queries, Section 2 of the paper).
package bgp

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	"rdfcube/internal/dict"
	"rdfcube/internal/hash64"
	"rdfcube/internal/obs"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// Workers overrides the evaluation and projection parallelism; 0 (the
// default) uses runtime.GOMAXPROCS. Exposed for tests and tuning.
var Workers int

// seedsPerWorker is the minimum first-pattern matches per worker before
// evaluation fans out; below it goroutine overhead dominates.
const seedsPerWorker = 512

// cancelCheckRows spaces the cooperative ctx.Err() polls: one check per
// this many rows scanned keeps the poll off the per-row hot path while
// bounding cancellation latency to microseconds of extra work.
const cancelCheckRows = 4096

// Result is a table of variable bindings.
type Result struct {
	// Vars names the columns.
	Vars []string
	// Rows holds one dict.ID per column per row.
	Rows [][]dict.ID
	// Sorted names the variables the rows are lexicographically ordered
	// by, in significance order. Nil when the engine makes no ordering
	// claim (row pipeline, unfrozen stores). Set by the batch engine and
	// propagated through projection so deduplication and grouping can
	// run-detect instead of hashing.
	Sorted []string
	// Strict reports that no two rows agree on all Sorted variables —
	// the rows are distinct tuples over them.
	Strict bool
}

// Len reports the number of rows.
func (r *Result) Len() int { return len(r.Rows) }

// Column returns the index of variable name, or -1.
func (r *Result) Column(name string) int {
	for i, v := range r.Vars {
		if v == name {
			return i
		}
	}
	return -1
}

// rowArena hands out fixed-width rows carved from chunked backing
// slices, amortizing one allocation over arenaChunkRows rows. Rows stay
// valid forever (chunks are never reused), so results can reference them
// directly.
type rowArena struct {
	width int
	buf   []dict.ID
}

const arenaChunkRows = 1024

func newRowArena(width int) *rowArena { return &rowArena{width: width} }

func (a *rowArena) newRow() []dict.ID {
	w := a.width
	if w == 0 {
		return nil
	}
	if len(a.buf) < w {
		a.buf = make([]dict.ID, arenaChunkRows*w)
	}
	r := a.buf[:w:w]
	a.buf = a.buf[w:]
	return r
}

// hashIDs hashes a row of IDs (word-wise FNV-1a; collisions are
// verified by callers with idRowsEqual).
func hashIDs(row []dict.ID) uint64 {
	h := uint64(hash64.Offset)
	for _, id := range row {
		h = hash64.Mix(h, uint64(id))
	}
	return h
}

func idRowsEqual(a, b []dict.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Options controls evaluation.
type Options struct {
	// Distinct selects set semantics for the head projection. When false,
	// every embedding contributes a row (bag semantics).
	Distinct bool
	// KeepAllVars retains every body variable instead of projecting onto
	// the head. Used to materialize m̄ (Definition 3) and intermediary
	// results.
	KeepAllVars bool
	// ForceNestedLoop pins every join step to the index-nested-loop
	// operator, bypassing the cursor-based merge and leapfrog joins.
	// The reference path for differential tests and benchmarks of the
	// join engine.
	ForceNestedLoop bool
	// RowPipeline pins the row-at-a-time pipeline (the pre-batch
	// engine) while keeping the cursor-based operators. Baseline for
	// batch-engine benchmarks and a secondary differential reference.
	RowPipeline bool
}

// Eval evaluates q against st under opts.
func Eval(st *store.Store, q *sparql.Query, opts Options) (*Result, error) {
	return EvalCtx(context.Background(), st, q, opts)
}

// EvalCtx evaluates q against st under opts, honoring ctx: cancellation
// and deadlines propagate cooperatively into the seed scan and every
// join worker, which poll ctx.Err() once per cancelCheckRows rows and
// abandon their chunk. A cancelled evaluation returns ctx's error.
func EvalCtx(ctx context.Context, st *store.Store, q *sparql.Query, opts Options) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	full, err := evalBody(ctx, st, q.Patterns, opts)
	if err != nil {
		return nil, err
	}
	var out *Result
	switch {
	case opts.KeepAllVars && !opts.Distinct:
		out = full
	case opts.KeepAllVars:
		out, err = full.Project(full.Vars, true)
	default:
		out, err = full.Project(q.Head, opts.Distinct)
	}
	if err != nil {
		return nil, err
	}
	// Rows produced is the query's final row count — after projection
	// and DISTINCT — so it is invariant across engines (the cost
	// differential tests pin this). Bytes is the materialized footprint
	// of those rows at 8 bytes per dictionary ID.
	if cost := obs.CostFromContext(ctx); cost != nil {
		cost.AddRowsProduced(int64(out.Len()))
		cost.AddBytes(int64(out.Len()) * int64(len(out.Vars)) * 8)
	}
	return out, nil
}

// EvalSet evaluates q with set semantics projected on the head — the
// default semantics of the paper's BGPs.
func EvalSet(st *store.Store, q *sparql.Query) (*Result, error) {
	return Eval(st, q, Options{Distinct: true})
}

// EvalSetCtx is EvalSet with cooperative ctx cancellation.
func EvalSetCtx(ctx context.Context, st *store.Store, q *sparql.Query) (*Result, error) {
	return EvalCtx(ctx, st, q, Options{Distinct: true})
}

// EvalBag evaluates q with bag semantics projected on the head — the
// semantics of measure queries.
func EvalBag(st *store.Store, q *sparql.Query) (*Result, error) {
	return Eval(st, q, Options{})
}

// EvalBagCtx is EvalBag with cooperative ctx cancellation.
func EvalBagCtx(ctx context.Context, st *store.Store, q *sparql.Query) (*Result, error) {
	return EvalCtx(ctx, st, q, Options{})
}

// evalBody computes all embeddings of the body patterns. The returned
// result has one column per body variable. On a frozen store the batch
// engine (batch.go) runs by default; ForceNestedLoop and RowPipeline
// pin the row-at-a-time pipeline below (ForceNestedLoop additionally
// downgrades every step to a nested probe, including stream steps).
func evalBody(ctx context.Context, st *store.Store, patterns []sparql.TriplePattern, opts Options) (res *Result, err error) {
	if len(patterns) == 0 {
		return &Result{}, nil
	}
	ctx, span := obs.StartSpan(ctx, "bgp.eval")
	if span != nil {
		span.AttrInt("patterns", int64(len(patterns)))
		defer func() {
			if res != nil {
				span.AddRows(int64(len(res.Rows)))
			}
			span.End()
		}()
	}
	compiled, vars, err := compile(st, patterns)
	if err != nil {
		return nil, err
	}
	if compiled == nil {
		// A constant in the query is unknown to the dictionary: no triple
		// can match, so the result is empty.
		return &Result{Vars: vars, Rows: nil}, nil
	}
	nv := len(vars)
	steps := planPipeline(st, compiled, nv, opts.ForceNestedLoop)

	// Per-step execution stats exist only under an active trace or cost
	// accumulator; nil stats short-circuit every accounting site below.
	// Both engines account into the same stats, so one deferred flush
	// covers the batch engine's early return path too (res is named).
	cost := obs.CostFromContext(ctx)
	var stats []stepStat
	if span != nil || cost != nil {
		stats = make([]stepStat, len(steps))
		if span != nil {
			defer func() { emitStepSpans(span, steps, vars, stats) }()
		}
		if cost != nil {
			defer func() { flushCost(cost, stats) }()
		}
	}

	if !opts.ForceNestedLoop && !opts.RowPipeline && st.IsFrozen() {
		if span != nil {
			span.Attr("engine", "batch")
		}
		return evalBatch(ctx, st, compiled, vars, steps, stats, span)
	}
	if span != nil {
		span.Attr("engine", "rows")
	}

	// Stage 0: materialize the first step's output as seed rows — the
	// first pattern's matching range, or the sorted intersection of a
	// cursor group (which seeds the pipeline already ordered by the
	// group's join variable).
	zeroRow := make([]dict.ID, nv)
	bound0 := make([]bool, nv)
	seedArena := newRowArena(nv)
	var seeds [][]dict.ID
	first := steps[0]
	var seedStart time.Time
	if stats != nil {
		seedStart = time.Now()
	}
	seedScanned := 0
	if first.kind == opNested {
		fp := &compiled[first.pats[0]]
		pat0, checks0 := fp.instantiate(zeroRow, bound0)
		if st.IsFrozen() {
			seeds = make([][]dict.ID, 0, st.Count(pat0)) // exact, O(log n)
		}
		st.ForEach(pat0, func(t store.IDTriple) bool {
			seedScanned++
			if seedScanned&(cancelCheckRows-1) == 0 && ctx.Err() != nil {
				return false
			}
			if !fp.accepts(t, zeroRow, bound0, checks0) {
				return true
			}
			nr := seedArena.newRow()
			fp.bind(t, nr)
			seeds = append(seeds, nr)
			return true
		})
	} else {
		cursors := make([]store.Cursor, len(first.pats))
		if openGroupCursors(st, compiled, first, zeroRow, bound0, cursors) {
			emit := func(key dict.ID) {
				nr := seedArena.newRow() // arena rows start zeroed
				nr[first.joinVar] = key
				seeds = append(seeds, nr)
			}
			if first.kind == opMerge {
				mergeJoin(&cursors[0], &cursors[1], emit)
			} else {
				leapfrogJoin(cursors, emit)
			}
			if stats != nil {
				stats[0].addCursorCounts(cursors)
			}
		}
	}
	if stats != nil {
		stats[0].busyNs.Add(time.Since(seedStart).Nanoseconds())
		stats[0].rows.Add(int64(len(seeds)))
		stats[0].scanned.Add(int64(seedScanned))
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rest := steps[1:]
	if len(rest) == 0 || len(seeds) == 0 {
		return &Result{Vars: vars, Rows: seeds}, nil
	}

	// The bound-variable state entering each join step depends only on
	// the plan, so the per-step states are computed once and shared
	// read-only by every worker.
	boundStages := make([][]bool, len(rest))
	cur := make([]bool, nv)
	markStepBound(compiled, first, cur)
	for k, stp := range rest {
		boundStages[k] = append([]bool(nil), cur...)
		markStepBound(compiled, stp, cur)
	}

	// An explicit Workers setting is honored as-is (tests, tuning); the
	// default caps fan-out so each worker gets a meaningful seed slice.
	nw := Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
		if max := len(seeds) / seedsPerWorker; nw > max {
			nw = max
		}
	}
	if nw > len(seeds) {
		nw = len(seeds)
	}
	if nw <= 1 {
		rows := joinChunk(ctx, st, compiled, rest, boundStages, seeds, seedArena, stats)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return &Result{Vars: vars, Rows: rows}, nil
	}

	// Partition the seeds into contiguous chunks, one worker each, with
	// per-worker arenas and result buffers; concatenation preserves seed
	// order, keeping output deterministic for a given plan.
	parts := make([][][]dict.ID, nw)
	var wg sync.WaitGroup
	chunk := (len(seeds) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(seeds) {
			hi = len(seeds)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = joinChunk(ctx, st, compiled, rest, boundStages, seeds[lo:hi], newRowArena(nv), stats)
		}(w, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	rows := make([][]dict.ID, 0, total)
	for _, p := range parts {
		rows = append(rows, p...)
	}
	return &Result{Vars: vars, Rows: rows}, nil
}

// markStepBound records the variables a step binds.
func markStepBound(compiled []compiledPattern, stp planStep, bound []bool) {
	for _, pi := range stp.pats {
		compiled[pi].markBound(bound)
	}
}

// joinChunk runs the remaining pipeline steps over one slice of seed
// rows: nested-loop probes per pattern, and per-row cursor
// intersections for merge/leapfrog groups. New rows come from the
// arena; the input rows are never mutated. Cancellation is polled once
// per cancelCheckRows scanned rows; a cancelled chunk returns its
// partial output and the caller discards it after checking ctx.
//
// stats, when non-nil, receives per-step execution counts (indexed
// stats[k+1] — slot 0 is the seed step). Accounting accumulates in
// plain locals and flushes into the shared atomics once per step, so
// tracing adds nothing to the per-row path beyond the local bumps; a
// cancelled chunk flushes what it has before bailing.
func joinChunk(ctx context.Context, st *store.Store, compiled []compiledPattern, rest []planStep, boundStages [][]bool, current [][]dict.ID, ar *rowArena, stats []stepStat) [][]dict.ID {
	var cursors []store.Cursor // reused across rows and steps
	scanned := 0
	cancelled := func() bool {
		scanned++
		return scanned&(cancelCheckRows-1) == 0 && ctx.Err() != nil
	}
	for k, stp := range rest {
		bound := boundStages[k]
		next := make([][]dict.ID, 0, len(current))
		var stepStart time.Time
		scannedBefore := scanned
		var stepSeeks, stepNexts int64
		if stats != nil {
			stepStart = time.Now()
		}
		flush := func() {
			if stats == nil {
				return
			}
			ss := &stats[k+1]
			ss.busyNs.Add(time.Since(stepStart).Nanoseconds())
			ss.rows.Add(int64(len(next)))
			ss.scanned.Add(int64(scanned - scannedBefore))
			ss.seeks.Add(stepSeeks)
			ss.nexts.Add(stepNexts)
		}
		if stp.kind == opNested || stp.kind == opStream {
			// Stream steps are a batch-engine specialization of the
			// nested probe; the row pipeline executes them as such.
			cp := &compiled[stp.pats[0]]
			for _, row := range current {
				pat, checks := cp.instantiate(row, bound)
				abort := false
				st.ForEach(pat, func(t store.IDTriple) bool {
					if cancelled() {
						abort = true
						return false
					}
					if !cp.accepts(t, row, bound, checks) {
						return true
					}
					nr := ar.newRow()
					copy(nr, row)
					cp.bind(t, nr)
					next = append(next, nr)
					return true
				})
				if abort {
					flush()
					return next
				}
			}
		} else {
			if cap(cursors) < len(stp.pats) {
				cursors = make([]store.Cursor, len(stp.pats))
			}
			cs := cursors[:len(stp.pats)]
			for _, row := range current {
				if cancelled() {
					flush()
					return next
				}
				if !openGroupCursors(st, compiled, stp, row, bound, cs) {
					continue
				}
				emit := func(key dict.ID) {
					nr := ar.newRow()
					copy(nr, row)
					nr[stp.joinVar] = key
					next = append(next, nr)
				}
				if stp.kind == opMerge {
					mergeJoin(&cs[0], &cs[1], emit)
				} else {
					leapfrogJoin(cs, emit)
				}
				if stats != nil {
					for i := range cs {
						s, n := cs[i].Counts()
						stepSeeks += s
						stepNexts += n
					}
				}
			}
		}
		flush()
		current = next
		if len(current) == 0 {
			break
		}
	}
	return current
}

// compiledPattern is a triple pattern with constants resolved to IDs and
// variables resolved to column indexes (-1 means constant position).
type compiledPattern struct {
	constS, constP, constO dict.ID // valid when the var index is -1
	varS, varP, varO       int
}

// compile resolves patterns; it returns (nil, vars, nil) when a constant
// term is absent from the dictionary (empty result).
func compile(st *store.Store, patterns []sparql.TriplePattern) ([]compiledPattern, []string, error) {
	varIndex := map[string]int{}
	var vars []string
	idx := func(name string) int {
		if i, ok := varIndex[name]; ok {
			return i
		}
		i := len(vars)
		varIndex[name] = i
		vars = append(vars, name)
		return i
	}
	d := st.Dict()
	unknown := false
	resolve := func(n sparql.Node) (dict.ID, int) {
		if n.IsVar() {
			return store.Wild, idx(n.Var)
		}
		id, ok := d.Lookup(n.Term)
		if !ok {
			unknown = true
		}
		return id, -1
	}
	out := make([]compiledPattern, len(patterns))
	for i, tp := range patterns {
		var cp compiledPattern
		cp.constS, cp.varS = resolve(tp.S)
		cp.constP, cp.varP = resolve(tp.P)
		cp.constO, cp.varO = resolve(tp.O)
		out[i] = cp
	}
	if unknown {
		return nil, vars, nil
	}
	return out, vars, nil
}

// instantiate builds the store pattern for the current row: constant
// positions use their IDs, bound variables use the row value, unbound
// variables stay Wild. checks flags positions where the same unbound
// variable repeats within the pattern (e.g. x p x) and must be verified
// after matching.
func (cp *compiledPattern) instantiate(row []dict.ID, bound []bool) (store.Pattern, [3]bool) {
	var pat store.Pattern
	var checks [3]bool
	get := func(constID dict.ID, v int) dict.ID {
		if v < 0 {
			return constID
		}
		if bound[v] {
			return row[v]
		}
		return store.Wild
	}
	pat.S = get(cp.constS, cp.varS)
	pat.P = get(cp.constP, cp.varP)
	pat.O = get(cp.constO, cp.varO)
	// Repeated unbound variables inside one pattern need post-checks.
	if cp.varS >= 0 && !bound[cp.varS] {
		if cp.varP == cp.varS {
			checks[1] = true
		}
		if cp.varO == cp.varS {
			checks[2] = true
		}
	}
	if cp.varP >= 0 && !bound[cp.varP] && cp.varO == cp.varP {
		checks[2] = true
	}
	return pat, checks
}

// accepts verifies repeated-variable constraints for a matched triple.
func (cp *compiledPattern) accepts(t store.IDTriple, row []dict.ID, bound []bool, checks [3]bool) bool {
	if checks[1] && t.P != t.S {
		return false
	}
	if checks[2] {
		if cp.varO == cp.varS && t.O != t.S {
			return false
		}
		if cp.varO == cp.varP && t.O != t.P {
			return false
		}
	}
	return true
}

// bind writes the matched triple's values into the row.
func (cp *compiledPattern) bind(t store.IDTriple, row []dict.ID) {
	if cp.varS >= 0 {
		row[cp.varS] = t.S
	}
	if cp.varP >= 0 {
		row[cp.varP] = t.P
	}
	if cp.varO >= 0 {
		row[cp.varO] = t.O
	}
}

// markBound records the pattern's variables as bound.
func (cp *compiledPattern) markBound(bound []bool) {
	if cp.varS >= 0 {
		bound[cp.varS] = true
	}
	if cp.varP >= 0 {
		bound[cp.varP] = true
	}
	if cp.varO >= 0 {
		bound[cp.varO] = true
	}
}

// connected reports whether any of the pattern's variables is bound.
func (cp *compiledPattern) connected(bound []bool) bool {
	return (cp.varS >= 0 && bound[cp.varS]) ||
		(cp.varP >= 0 && bound[cp.varP]) ||
		(cp.varO >= 0 && bound[cp.varO])
}

// boundEstimate estimates how many triples the pattern matches per input
// row, given which variables are already bound: start from the
// constants-only cardinality (exact ranges on a frozen store) and divide
// by the distinct-value count of every bound position — per-predicate
// distinct subjects/objects from the freeze-time stats when the
// predicate is constant, store-wide counts otherwise.
func (cp *compiledPattern) boundEstimate(st *store.Store, bound []bool) float64 {
	pat := store.Pattern{}
	if cp.varS < 0 {
		pat.S = cp.constS
	}
	if cp.varP < 0 {
		pat.P = cp.constP
	}
	if cp.varO < 0 {
		pat.O = cp.constO
	}
	est := st.EstimateCardinality(pat)
	if est == 0 {
		return 0
	}
	pConst := cp.varP < 0
	if cp.varS >= 0 && bound[cp.varS] {
		d := 0
		if pConst {
			d = st.DistinctSubjects(pat.P)
		}
		if d == 0 {
			d = st.DistinctSubjectsAll()
		}
		est /= float64(maxI(d, 1))
	}
	if cp.varO >= 0 && bound[cp.varO] {
		d := 0
		if pConst {
			d = st.DistinctObjects(pat.P)
		}
		if d == 0 {
			d = st.DistinctObjectsAll()
		}
		est /= float64(maxI(d, 1))
	}
	if cp.varP >= 0 && bound[cp.varP] {
		est /= float64(maxI(st.Stats().Predicates, 1))
	}
	return est
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// nBound counts the pattern's already-bound variables.
func (cp *compiledPattern) nBound(bound []bool) int {
	n := 0
	if cp.varS >= 0 && bound[cp.varS] {
		n++
	}
	if cp.varP >= 0 && bound[cp.varP] {
		n++
	}
	if cp.varO >= 0 && bound[cp.varO] {
		n++
	}
	return n
}

// SortRows orders rows lexicographically in place; useful for
// deterministic output and comparisons in tests.
func (r *Result) SortRows() {
	sort.Slice(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
