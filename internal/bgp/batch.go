package bgp

// Batch-at-a-time execution: the default engine on a frozen store.
//
// Operators exchange fixed-capacity column-major chunks (batch) instead
// of single rows. The seed stage bulk-copies straight out of the frozen
// permutation columns when it can (store.PatternColumns) and falls back
// to the merged base+delta iterator otherwise; join steps consume and
// emit batches; the stream operator (plan.go) replaces per-row nested
// probes with one shared cursor per batch — the batch's key values are
// visited in sorted order, the cursor gallops between them, and each
// key's tail run is enumerated once and fanned back out in input order.
//
// The pipeline preserves input order everywhere and appends each step's
// bindings in sorted order, so the output obeys the plan-time sort
// property (planSorted): rows are strictly lexicographically ordered by
// the binding order of the variables. Projection and aggregation
// exploit that downstream (project.go, algebra) by replacing hash
// deduplication with run detection or skipping it entirely.
//
// Worker fan-out mirrors the row engine: seed batches are partitioned
// into contiguous runs, each worker executes the remaining steps over
// its run, and the per-worker outputs are concatenated in order —
// deterministic, and order-preserving so the sort property survives.

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	"rdfcube/internal/dict"
	"rdfcube/internal/obs"
	"rdfcube/internal/store"
)

// batchRows is the row capacity of one pipeline batch.
const batchRows = 1024

// batch is a column-major chunk of binding rows: cols[j][i] is row i's
// value for variable j. Only the first n rows are live; columns of
// variables not yet bound hold zeroes in seed batches and stale values
// afterwards (never read — a variable is only read once bound).
type batch struct {
	cols [][]dict.ID
	n    int
}

// newBatch allocates a batch with one backing array for all columns.
func newBatch(nv int) *batch {
	backing := make([]dict.ID, nv*batchRows)
	cols := make([][]dict.ID, nv)
	for j := range cols {
		cols[j] = backing[j*batchRows : (j+1)*batchRows : (j+1)*batchRows]
	}
	return &batch{cols: cols}
}

// batchWriter appends rows to a growing batch list.
type batchWriter struct {
	nv  int
	out []*batch
	cur *batch
}

// slot returns the batch and row index the next row lands in.
func (w *batchWriter) slot() (*batch, int) {
	if w.cur == nil || w.cur.n == batchRows {
		w.cur = newBatch(w.nv)
		w.out = append(w.out, w.cur)
	}
	w.cur.n++
	return w.cur, w.cur.n - 1
}

// appendRow copies a full scratch row into the list.
func (w *batchWriter) appendRow(row []dict.ID) {
	b, i := w.slot()
	for j, v := range row {
		b.cols[j][i] = v
	}
}

// rowCount sums the live rows of a batch list.
func rowCount(bs []*batch) int {
	total := 0
	for _, b := range bs {
		total += b.n
	}
	return total
}

// batchesToRows materializes a batch list as arena rows — the Result
// representation the projection and algebra layers consume.
func batchesToRows(bs []*batch, nv int) [][]dict.ID {
	rows := make([][]dict.ID, 0, rowCount(bs))
	ar := newRowArena(nv)
	for _, b := range bs {
		for i := 0; i < b.n; i++ {
			r := ar.newRow()
			for j := 0; j < nv; j++ {
				r[j] = b.cols[j][i]
			}
			rows = append(rows, r)
		}
	}
	return rows
}

// evalBatch runs the batch pipeline: seed stage, worker fan-out over
// contiguous seed-batch runs, ordered concatenation. The result carries
// the plan's sort property.
func evalBatch(ctx context.Context, st *store.Store, compiled []compiledPattern, vars []string, steps []planStep, stats []stepStat, span *obs.Span) (*Result, error) {
	nv := len(vars)
	order, strict := planSorted(compiled, steps, nv)
	sortedNames := make([]string, len(order))
	for i, v := range order {
		sortedNames[i] = vars[v]
	}
	if span != nil {
		span.Attr("sorted", sortedLabel(order, strict, vars))
	}
	mk := func(bs []*batch) *Result {
		return &Result{Vars: vars, Rows: batchesToRows(bs, nv), Sorted: sortedNames, Strict: strict}
	}

	zeroRow := make([]dict.ID, nv)
	bound0 := make([]bool, nv)
	first := steps[0]
	var seedStart time.Time
	if stats != nil {
		seedStart = time.Now()
	}
	seedScanned := 0
	var seeds []*batch
	if first.kind == opNested {
		fp := &compiled[first.pats[0]]
		pat0, checks0 := fp.instantiate(zeroRow, bound0)
		if cr, ok := st.PatternColumnRange(pat0); ok && !checks0[1] && !checks0[2] {
			// Bulk fill: the matching range is contiguous in the frozen
			// permutation, so each free position is one block-wise copy per
			// batch — straight out of heap arrays or decoded from mapped
			// delta blocks, whichever backs the store.
			n := cr.Len()
			seedScanned = n
			var sink []dict.ID // one throwaway buffer for positions with no variable
			dst := func(v int) []dict.ID {
				if v >= 0 {
					return nil // filled from the batch's own column below
				}
				if sink == nil {
					sink = make([]dict.ID, batchRows)
				}
				return sink
			}
			sSink, pSink, oSink := dst(fp.varS), dst(fp.varP), dst(fp.varO)
			for lo := 0; lo < n; lo += batchRows {
				hi := lo + batchRows
				if hi > n {
					hi = n
				}
				if ctx.Err() != nil {
					break
				}
				b := newBatch(nv)
				b.n = hi - lo
				sCol, pCol, oCol := sSink, pSink, oSink
				if fp.varS >= 0 {
					sCol = b.cols[fp.varS]
				}
				if fp.varP >= 0 {
					pCol = b.cols[fp.varP]
				}
				if fp.varO >= 0 {
					oCol = b.cols[fp.varO]
				}
				cr.Fill(lo, sCol[:b.n], pCol[:b.n], oCol[:b.n])
				seeds = append(seeds, b)
			}
		} else {
			w := batchWriter{nv: nv}
			scratch := make([]dict.ID, nv)
			st.ForEach(pat0, func(t store.IDTriple) bool {
				seedScanned++
				if seedScanned&(cancelCheckRows-1) == 0 && ctx.Err() != nil {
					return false
				}
				if !fp.accepts(t, zeroRow, bound0, checks0) {
					return true
				}
				fp.bind(t, scratch)
				w.appendRow(scratch)
				return true
			})
			seeds = w.out
		}
	} else {
		cursors := make([]store.Cursor, len(first.pats))
		if openGroupCursors(st, compiled, first, zeroRow, bound0, cursors) {
			w := batchWriter{nv: nv}
			emit := func(key dict.ID) {
				b, i := w.slot()
				b.cols[first.joinVar][i] = key
			}
			if first.kind == opMerge {
				mergeJoin(&cursors[0], &cursors[1], emit)
			} else {
				leapfrogJoin(cursors, emit)
			}
			seeds = w.out
			if stats != nil {
				stats[0].addCursorCounts(cursors)
			}
		}
	}
	if stats != nil {
		stats[0].busyNs.Add(time.Since(seedStart).Nanoseconds())
		stats[0].rows.Add(int64(rowCount(seeds)))
		stats[0].scanned.Add(int64(seedScanned))
		stats[0].batches.Add(int64(len(seeds)))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rest := steps[1:]
	if len(rest) == 0 || len(seeds) == 0 {
		return mk(seeds), nil
	}

	boundStages := make([][]bool, len(rest))
	cur := make([]bool, nv)
	markStepBound(compiled, first, cur)
	for k, stp := range rest {
		boundStages[k] = append([]bool(nil), cur...)
		markStepBound(compiled, stp, cur)
	}

	totalSeed := rowCount(seeds)
	nw := Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
		if max := totalSeed / seedsPerWorker; nw > max {
			nw = max
		}
	}
	if nw > len(seeds) {
		nw = len(seeds)
	}
	if nw <= 1 {
		out := batchChunk(ctx, st, compiled, nv, rest, boundStages, seeds, stats)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return mk(out), nil
	}

	parts := make([][]*batch, nw)
	var wg sync.WaitGroup
	chunk := (len(seeds) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(seeds) {
			hi = len(seeds)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = batchChunk(ctx, st, compiled, nv, rest, boundStages, seeds[lo:hi], stats)
		}(w, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []*batch
	for _, p := range parts {
		out = append(out, p...)
	}
	return mk(out), nil
}

// batchChunk runs the remaining pipeline steps over one contiguous run
// of seed batches. Statistics and cancellation follow joinChunk's
// contract (flush per step, poll per cancelCheckRows rows).
func batchChunk(ctx context.Context, st *store.Store, compiled []compiledPattern, nv int, rest []planStep, boundStages [][]bool, current []*batch, stats []stepStat) []*batch {
	scratch := make([]dict.ID, nv)
	var cursors []store.Cursor
	scanned := 0
	cancelled := func() bool {
		scanned++
		return scanned&(cancelCheckRows-1) == 0 && ctx.Err() != nil
	}
	// Stream-step scratch, reused across batches and steps.
	var order []int
	var mlo, mhi []int32
	var tails []dict.ID
	for k, stp := range rest {
		bound := boundStages[k]
		w := &batchWriter{nv: nv}
		var stepStart time.Time
		scannedBefore := scanned
		var stepSeeks, stepNexts int64
		if stats != nil {
			stepStart = time.Now()
		}
		flush := func() {
			if stats == nil {
				return
			}
			ss := &stats[k+1]
			ss.busyNs.Add(time.Since(stepStart).Nanoseconds())
			ss.rows.Add(int64(rowCount(w.out)))
			ss.scanned.Add(int64(scanned - scannedBefore))
			ss.seeks.Add(stepSeeks)
			ss.nexts.Add(stepNexts)
			ss.batches.Add(int64(len(w.out)))
		}
		switch stp.kind {
		case opNested:
			cp := &compiled[stp.pats[0]]
			for _, b := range current {
				for i := 0; i < b.n; i++ {
					for j := 0; j < nv; j++ {
						scratch[j] = b.cols[j][i]
					}
					pat, checks := cp.instantiate(scratch, bound)
					abort := false
					st.ForEach(pat, func(t store.IDTriple) bool {
						if cancelled() {
							abort = true
							return false
						}
						if !cp.accepts(t, scratch, bound, checks) {
							return true
						}
						cp.bind(t, scratch)
						w.appendRow(scratch)
						return true
					})
					if abort {
						flush()
						return w.out
					}
				}
			}
		case opStream:
			cp := &compiled[stp.pats[0]]
			v := stp.joinVar
			tailPos := -1
			if stp.tail >= 0 {
				switch stp.tail {
				case cp.varS:
					tailPos = 0
				case cp.varP:
					tailPos = 1
				default:
					tailPos = 2
				}
			}
			for _, b := range current {
				n := b.n
				keys := b.cols[v][:n]
				// Visit the batch's keys in sorted order through one
				// shared cursor (Seek only moves forward); a batch that
				// arrives sorted — the common case when v heads the sort
				// prefix — skips the argsort.
				presorted := true
				for i := 1; i < n; i++ {
					if keys[i-1] > keys[i] {
						presorted = false
						break
					}
				}
				order = order[:0]
				for i := 0; i < n; i++ {
					order = append(order, i)
				}
				if !presorted {
					sort.Slice(order, func(a, c int) bool { return keys[order[a]] < keys[order[c]] })
				}
				cur := openStreamCursor(st, cp, stp)
				tails = tails[:0]
				if cap(mlo) < n {
					mlo = make([]int32, batchRows)
					mhi = make([]int32, batchRows)
				}
				havePrev := false
				var prevKey dict.ID
				var lo, hi int32
				abort := false
				for _, idx := range order {
					k := keys[idx]
					if !havePrev || k != prevKey {
						lo = int32(len(tails))
						cur.Seek(k)
						for cur.Valid() && cur.Key() == k {
							if cancelled() {
								abort = true
								break
							}
							switch tailPos {
							case 0:
								tails = append(tails, cur.Triple().S)
							case 1:
								tails = append(tails, cur.Triple().P)
							default:
								// tailPos 2 (O) and the tail-less
								// existence probe, whose strict keys
								// yield at most one entry.
								tails = append(tails, cur.Triple().O)
							}
							cur.Next()
						}
						hi = int32(len(tails))
						prevKey, havePrev = k, true
					}
					if abort {
						break
					}
					mlo[idx], mhi[idx] = lo, hi
				}
				if abort {
					cs, cn := cur.Counts()
					stepSeeks += cs
					stepNexts += cn
					flush()
					return w.out
				}
				// Fan the matches back out in input order, so the step
				// preserves the batch's ordering and appends its tail in
				// ascending order per input row.
				for i := 0; i < n; i++ {
					if mlo[i] == mhi[i] {
						continue
					}
					for j := 0; j < nv; j++ {
						scratch[j] = b.cols[j][i]
					}
					for m := mlo[i]; m < mhi[i]; m++ {
						if stp.tail >= 0 {
							scratch[stp.tail] = tails[m]
						}
						w.appendRow(scratch)
					}
				}
				cs, cn := cur.Counts()
				stepSeeks += cs
				stepNexts += cn
			}
		default: // opMerge, opLeapfrog: cursor intersections
			if cap(cursors) < len(stp.pats) {
				cursors = make([]store.Cursor, len(stp.pats))
			}
			cs := cursors[:len(stp.pats)]
			countCursors := func() {
				if stats == nil {
					return
				}
				for j := range cs {
					s, n := cs[j].Counts()
					stepSeeks += s
					stepNexts += n
				}
			}
			kv := groupKeyVar(compiled, stp, bound)
			if kv >= -1 {
				// Batch-native intersection: the group's cursors depend on
				// at most one bound variable, so the join keys for a given
				// value of it are the same for every row carrying that
				// value. Visit the batch's key column in sorted order
				// (argsort, skipped when it arrives presorted), intersect
				// once per DISTINCT value, and fan the shared key run back
				// out in input order — each row still appends its joins in
				// ascending order, so the sort property is untouched. With
				// no bound variable at all (a deferred cross-product group)
				// one intersection serves the entire chunk.
				var shared []dict.ID
				sharedDone := false
				runGroup := func(row []dict.ID) {
					if openGroupCursors(st, compiled, stp, row, bound, cs) {
						emit := func(key dict.ID) { tails = append(tails, key) }
						if stp.kind == opMerge {
							mergeJoin(&cs[0], &cs[1], emit)
						} else {
							leapfrogJoin(cs, emit)
						}
						countCursors()
					}
				}
				for _, b := range current {
					n := b.n
					if kv < 0 {
						// Row-independent group: one shared key run.
						if !sharedDone {
							tails = tails[:0]
							runGroup(scratch)
							shared = append(shared[:0], tails...)
							sharedDone = true
						}
						for i := 0; i < n; i++ {
							if cancelled() {
								flush()
								return w.out
							}
							for j := 0; j < nv; j++ {
								scratch[j] = b.cols[j][i]
							}
							for _, key := range shared {
								scratch[stp.joinVar] = key
								w.appendRow(scratch)
							}
						}
						continue
					}
					keys := b.cols[kv][:n]
					presorted := true
					for i := 1; i < n; i++ {
						if keys[i-1] > keys[i] {
							presorted = false
							break
						}
					}
					order = order[:0]
					for i := 0; i < n; i++ {
						order = append(order, i)
					}
					if !presorted {
						sort.Slice(order, func(a, c int) bool { return keys[order[a]] < keys[order[c]] })
					}
					if cap(mlo) < n {
						mlo = make([]int32, batchRows)
						mhi = make([]int32, batchRows)
					}
					tails = tails[:0]
					havePrev := false
					var prevKey dict.ID
					var lo, hi int32
					for _, idx := range order {
						k := keys[idx]
						if !havePrev || k != prevKey {
							if cancelled() {
								flush()
								return w.out
							}
							lo = int32(len(tails))
							scratch[kv] = k
							runGroup(scratch)
							hi = int32(len(tails))
							prevKey, havePrev = k, true
						}
						mlo[idx], mhi[idx] = lo, hi
					}
					for i := 0; i < n; i++ {
						if mlo[i] == mhi[i] {
							continue
						}
						for j := 0; j < nv; j++ {
							scratch[j] = b.cols[j][i]
						}
						for m := mlo[i]; m < mhi[i]; m++ {
							scratch[stp.joinVar] = tails[m]
							w.appendRow(scratch)
						}
					}
				}
				break
			}
			// Two or more distinct bound variables parameterize the group:
			// no sharing across rows, intersect per row.
			for _, b := range current {
				for i := 0; i < b.n; i++ {
					if cancelled() {
						flush()
						return w.out
					}
					for j := 0; j < nv; j++ {
						scratch[j] = b.cols[j][i]
					}
					if !openGroupCursors(st, compiled, stp, scratch, bound, cs) {
						continue
					}
					emit := func(key dict.ID) {
						scratch[stp.joinVar] = key
						w.appendRow(scratch)
					}
					if stp.kind == opMerge {
						mergeJoin(&cs[0], &cs[1], emit)
					} else {
						leapfrogJoin(cs, emit)
					}
					countCursors()
				}
			}
		}
		flush()
		current = w.out
		if len(current) == 0 {
			break
		}
	}
	return current
}

// groupKeyVar classifies how a merge/leapfrog step's cursors depend on
// the input row: every non-join position of a group pattern is a
// constant or a bound variable (cursorEligible), so the set of bound
// variables the group references is what parameterizes its
// intersection. Returns the single referenced variable when there is
// exactly one (the batch-native path intersects once per distinct
// value), -1 when the group references none (one intersection serves
// every row), and -2 when two or more distinct bound variables are
// referenced (no sharing — per-row fallback).
func groupKeyVar(compiled []compiledPattern, stp planStep, bound []bool) int {
	kv := -1
	for _, pi := range stp.pats {
		cp := &compiled[pi]
		for _, pv := range [3]int{cp.varS, cp.varP, cp.varO} {
			if pv < 0 || pv == stp.joinVar || !bound[pv] {
				continue
			}
			if kv >= 0 && kv != pv {
				return -2
			}
			kv = pv
		}
	}
	return kv
}

// openStreamCursor opens the shared per-batch cursor of a stream step:
// the PSO cursor for the (P const, key S, tail O) shape, the generic
// pattern cursor — whose key column is the leading free component —
// for every other eligible shape.
func openStreamCursor(st *store.Store, cp *compiledPattern, stp planStep) store.Cursor {
	if stp.pso {
		return st.NewCursorPSO(cp.constP)
	}
	var pat store.Pattern
	if cp.varS < 0 {
		pat.S = cp.constS
	}
	if cp.varP < 0 {
		pat.P = cp.constP
	}
	if cp.varO < 0 {
		pat.O = cp.constO
	}
	return st.NewCursor(pat)
}
