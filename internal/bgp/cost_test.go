package bgp

// Cost-accounting differential: the per-query obs.Cost flushed by every
// engine (batch, row pipeline, nested-loop reference) must agree on the
// engine-invariant numbers — rows produced and bytes materialized — for
// each shape of the differential matrix, and the engine-dependent
// counters (scans, seeks) must be populated wherever the engine touches
// the store at all.

import (
	"fmt"
	"math/rand"
	"testing"

	"rdfcube/internal/obs"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// evalCost evaluates q under opts with a fresh Cost attached and
// returns the result plus the flushed snapshot.
func evalCost(t *testing.T, st *store.Store, q *sparql.Query, opts Options) (*Result, obs.CostSnapshot) {
	t.Helper()
	ctx, cost := obs.WithCost(t.Context())
	res, err := EvalCtx(ctx, st, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, cost.Snapshot()
}

// TestCostDifferentialShapes: over the 8-shape matrix, frozen-only and
// frozen+delta, all three engines report the same rows-produced and
// bytes-materialized, matching the actual result, and each engine that
// reads the store reports nonzero rows-scanned.
func TestCostDifferentialShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for _, split := range []bool{false, true} {
		st := diffGraph(rng, 300, split)
		for _, shape := range diffShapes {
			q := sparql.MustParseDatalog(shape.query, px())
			label := fmt.Sprintf("split=%v %s", split, shape.name)

			batchRes, batch := evalCost(t, st, q, Options{Distinct: true})
			rowRes, row := evalCost(t, st, q, Options{Distinct: true, RowPipeline: true})
			nestRes, nest := evalCost(t, st, q, Options{Distinct: true, ForceNestedLoop: true})

			for _, e := range []struct {
				engine string
				res    *Result
				snap   obs.CostSnapshot
			}{{"batch", batchRes, batch}, {"row", rowRes, row}, {"nested", nestRes, nest}} {
				if e.snap.RowsProduced != int64(e.res.Len()) {
					t.Errorf("%s/%s: RowsProduced = %d, result has %d rows",
						label, e.engine, e.snap.RowsProduced, e.res.Len())
				}
				wantBytes := int64(e.res.Len()) * int64(len(e.res.Vars)) * 8
				if e.snap.Bytes != wantBytes {
					t.Errorf("%s/%s: Bytes = %d, want %d",
						label, e.engine, e.snap.Bytes, wantBytes)
				}
				if e.snap.RowsScanned == 0 {
					t.Errorf("%s/%s: RowsScanned = 0 on a %d-triple store",
						label, e.engine, 300)
				}
			}
			if batch.RowsProduced != row.RowsProduced || row.RowsProduced != nest.RowsProduced {
				t.Errorf("%s: RowsProduced disagree: batch=%d row=%d nested=%d",
					label, batch.RowsProduced, row.RowsProduced, nest.RowsProduced)
			}
			if batch.Bytes != row.Bytes || row.Bytes != nest.Bytes {
				t.Errorf("%s: Bytes disagree: batch=%d row=%d nested=%d",
					label, batch.Bytes, row.Bytes, nest.Bytes)
			}
		}
	}
}

// TestCostBagMatchesSet: bag semantics produce at least as many rows as
// set semantics, and the accounting follows the actual row counts.
func TestCostBagMatchesSet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	st := diffGraph(rng, 200, false)
	q := sparql.MustParseDatalog("q(x, w) :- x :a0 :v0, x :a2 w", px())
	setRes, setCost := evalCost(t, st, q, Options{Distinct: true})
	bagRes, bagCost := evalCost(t, st, q, Options{})
	if setCost.RowsProduced != int64(setRes.Len()) || bagCost.RowsProduced != int64(bagRes.Len()) {
		t.Fatalf("accounting mismatch: set %d/%d bag %d/%d",
			setCost.RowsProduced, setRes.Len(), bagCost.RowsProduced, bagRes.Len())
	}
	if bagCost.RowsProduced < setCost.RowsProduced {
		t.Fatalf("bag produced %d < set %d", bagCost.RowsProduced, setCost.RowsProduced)
	}
}

// TestCostNilContext: without a Cost in the context, evaluation takes
// the no-stats fast path (nothing to observe, nothing to flush).
func TestCostNilContext(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	st := diffGraph(rng, 150, false)
	q := sparql.MustParseDatalog("q(x) :- x :a0 :v0, x :a1 :v1", px())
	res, err := EvalCtx(t.Context(), st, q, Options{Distinct: true})
	if err != nil {
		t.Fatal(err)
	}
	// Differential anchor: same query with a Cost attached agrees with
	// the plain run.
	res2, snap := evalCost(t, st, q, Options{Distinct: true})
	if res.Len() != res2.Len() {
		t.Fatalf("cost-attached run changed the result: %d vs %d rows", res2.Len(), res.Len())
	}
	if snap.RowsProduced != int64(res.Len()) {
		t.Fatalf("RowsProduced = %d, want %d", snap.RowsProduced, res.Len())
	}
}
