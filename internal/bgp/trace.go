package bgp

// EXPLAIN ANALYZE support: per-step execution statistics, collected
// only when the evaluation's context carries an active obs span. The
// counters are atomic because the pipeline fans seed chunks out across
// workers that all execute every remaining step; each worker flushes
// its per-step local counts once per step, so the per-row hot path
// never touches an atomic.
//
// Step "busy" time is the summed worker time spent inside the step —
// CPU-ish time, not wall time (the pipeline runs steps for different
// chunks concurrently). The step spans say so via the busy="sum" attr.

import (
	"fmt"
	"strings"
	"sync/atomic"

	"rdfcube/internal/obs"
	"rdfcube/internal/store"
)

// stepStat aggregates one plan step's execution counts across workers.
type stepStat struct {
	rows    atomic.Int64 // rows emitted by the step
	scanned atomic.Int64 // triples visited by nested probes
	seeks   atomic.Int64 // cursor galloping seeks (merge/leapfrog)
	nexts   atomic.Int64 // cursor single-step advances
	busyNs  atomic.Int64 // summed worker nanoseconds inside the step
	batches atomic.Int64 // batches emitted (batch engine only)
}

// addCursorCounts flushes one cursor group's access-path counters.
func (ss *stepStat) addCursorCounts(cs []store.Cursor) {
	var seeks, nexts int64
	for i := range cs {
		s, n := cs[i].Counts()
		seeks += s
		nexts += n
	}
	ss.seeks.Add(seeks)
	ss.nexts.Add(nexts)
}

// flushCost folds the per-step execution stats into the query's cost
// accumulator. Rows scanned counts every triple position visited:
// nested-probe scans, cursor single-step advances, and cursor seeks
// (a galloping seek lands on a triple too — and merge/leapfrog steps
// move almost exclusively by seeking). Rows produced and bytes are
// accounted by EvalCtx on the final projected result, not here.
func flushCost(cost *obs.Cost, stats []stepStat) {
	var scanned, seeks, nexts, batches, busy int64
	for i := range stats {
		scanned += stats[i].scanned.Load()
		seeks += stats[i].seeks.Load()
		nexts += stats[i].nexts.Load()
		batches += stats[i].batches.Load()
		busy += stats[i].busyNs.Load()
	}
	cost.AddRowsScanned(scanned + nexts + seeks)
	cost.AddSeeks(seeks)
	cost.AddNexts(nexts)
	cost.AddBatches(batches)
	cost.AddCPUNs(busy)
}

// describeStep renders a step's pattern list for the span attrs, e.g.
// "p0,p2,p3".
func describeStep(stp planStep) string {
	parts := make([]string, len(stp.pats))
	for i, pi := range stp.pats {
		parts[i] = fmt.Sprintf("p%d", pi)
	}
	return strings.Join(parts, ",")
}

// emitStepSpans attaches one child span per executed plan step to the
// evaluation span, carrying the collected statistics. Called once, at
// the end of evalBody (including early exits — the spans then show
// where execution stopped).
func emitStepSpans(span *obs.Span, steps []planStep, vars []string, stats []stepStat) {
	if span == nil || stats == nil {
		return
	}
	for i := range steps {
		stp := steps[i]
		ss := &stats[i]
		c := span.NewChild(stp.kind.String())
		c.SetDurationNs(ss.busyNs.Load())
		c.AddRows(ss.rows.Load())
		c.AddSeeks(ss.seeks.Load())
		c.Attr("pats", describeStep(stp))
		switch stp.kind {
		case opNested:
			if n := ss.scanned.Load(); n > 0 {
				c.AttrInt("scanned", n)
			}
		case opStream:
			c.Attr("join_var", vars[stp.joinVar])
			if stp.tail >= 0 {
				c.Attr("tail_var", vars[stp.tail])
			}
			if stp.pso {
				c.Attr("perm", "pso")
			}
			c.AttrInt("nexts", ss.nexts.Load())
		default:
			c.AttrInt("cursors", int64(len(stp.pats)))
			c.Attr("join_var", vars[stp.joinVar])
			c.AttrInt("nexts", ss.nexts.Load())
		}
		if nb := ss.batches.Load(); nb > 0 {
			c.AttrInt("batches", nb)
			if rows := ss.rows.Load(); rows > 0 {
				c.AttrInt("rows_per_batch", rows/nb)
			}
		}
		c.Attr("busy", "sum") // summed worker time, not wall time
	}
}
