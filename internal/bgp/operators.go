package bgp

// Cursor-based join operators over store.Cursor streams.
//
// Both operators intersect cursors whose keys are strictly increasing —
// the store guarantees that for the two-bound pattern ranges the planner
// admits into groups (the third column of a permutation run is a set).
// Every emitted key is a value of the group's join variable present in
// every pattern's range, so a group step contributes exactly one
// embedding per emitted key: bag semantics are preserved without any
// deduplication.

import (
	"sort"

	"rdfcube/internal/dict"
	"rdfcube/internal/store"
)

// mergeJoin emits the intersection of two sorted key cursors: a zig-zag
// merge that seeks each side to the other's key, so runs with no overlap
// are skipped in O(log gap) instead of scanned.
func mergeJoin(a, b *store.Cursor, emit func(dict.ID)) {
	for a.Valid() && b.Valid() {
		ka, kb := a.Key(), b.Key()
		switch {
		case ka < kb:
			a.Seek(kb)
		case kb < ka:
			b.Seek(ka)
		default:
			emit(ka)
			a.Next()
			b.Next()
		}
	}
}

// leapfrogJoin emits the intersection of k sorted key cursors — the
// leapfrog-triejoin search (Veldhuizen, ICDT 2014) restricted to one
// variable level: cursors are kept sorted by current key, and the
// smallest repeatedly leapfrogs to the largest, so the work is bounded
// by the smallest cursor's length times k log-seeks, not by the sum of
// the range sizes.
func leapfrogJoin(cs []store.Cursor, emit func(dict.ID)) {
	k := len(cs)
	for i := range cs {
		if !cs[i].Valid() {
			return
		}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].Key() < cs[j].Key() })
	p := 0
	max := cs[k-1].Key()
	for {
		x := cs[p].Key()
		if x == max {
			// All k cursors sit on x: a match. Advance past it.
			emit(x)
			cs[p].Next()
		} else {
			cs[p].Seek(max)
		}
		if !cs[p].Valid() {
			return
		}
		max = cs[p].Key()
		p++
		if p == k {
			p = 0
		}
	}
}

// openGroupCursors instantiates each group pattern against the current
// row and opens its cursor into out. It reports false — intersection
// empty — as soon as any cursor starts exhausted.
func openGroupCursors(st *store.Store, compiled []compiledPattern, stp planStep, row []dict.ID, bound []bool, out []store.Cursor) bool {
	for i, pi := range stp.pats {
		pat, _ := compiled[pi].instantiate(row, bound)
		out[i] = st.NewCursor(pat)
		if !out[i].Valid() {
			return false
		}
	}
	return true
}
