package bgp

// Differential tests for the evaluation pipeline: the frozen-store path
// and the parallel worker partitioning must produce exactly the result
// sets of the map-based, sequential path.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// randomGraph builds a random multi-hop graph in the style of the core
// package's property-test generator.
func randomGraph(rng *rand.Rand, facts int) *store.Store {
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }
	for f := 0; f < facts; f++ {
		x := iri(fmt.Sprintf("fact%d", f))
		add(x, rdf.Type, iri("Fact"))
		for d := 0; d < 2; d++ {
			if rng.Float64() < 0.15 {
				continue
			}
			prop := iri(fmt.Sprintf("dim%d", d))
			add(x, prop, rdf.NewInt(int64(rng.Intn(4))))
			if rng.Float64() < 0.35 {
				add(x, prop, rdf.NewInt(int64(4+rng.Intn(3))))
			}
		}
		nm := rng.Intn(4)
		for m := 0; m < nm; m++ {
			e := iri(fmt.Sprintf("ev%d_%d", f, m))
			add(x, iri("did"), e)
			add(e, iri("score"), rdf.NewInt(int64(1+rng.Intn(5))))
		}
	}
	return st
}

func canonicalRows(res *Result) [][]dict64 {
	rows := make([][]dict64, len(res.Rows))
	for i, r := range res.Rows {
		c := make([]dict64, len(r))
		for j, id := range r {
			c[j] = dict64(id)
		}
		rows[i] = c
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return rows
}

type dict64 uint64

func sameRows(a, b [][]dict64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

var diffQueries = []string{
	"q(x, d0) :- x rdf:type :Fact, x :dim0 d0",
	"q(x, v) :- x rdf:type :Fact, x :did e, e :score v",
	"q(d0, d1, v) :- x rdf:type :Fact, x :dim0 d0, x :dim1 d1, x :did e, e :score v",
	"q(x, p, o) :- x p o",
	"q(s) :- s :dim0 w, s :dim1 w", // repeated variable across patterns
}

// TestFrozenVsMapEvaluation: identical result bags on both store
// representations, for set and bag semantics.
func TestFrozenVsMapEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	st := randomGraph(rng, 150)
	for qi, text := range diffQueries {
		q, err := sparql.ParseDatalog(text, px())
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		for _, distinct := range []bool{true, false} {
			st.Thaw()
			mapRes, err := Eval(st, q, Options{Distinct: distinct})
			if err != nil {
				t.Fatal(err)
			}
			st.Freeze()
			frzRes, err := Eval(st, q, Options{Distinct: distinct})
			if err != nil {
				t.Fatal(err)
			}
			if !sameRows(canonicalRows(mapRes), canonicalRows(frzRes)) {
				t.Fatalf("query %d distinct=%v: frozen path diverged\n maps:   %d rows\n frozen: %d rows",
					qi, distinct, mapRes.Len(), frzRes.Len())
			}
		}
	}
}

// TestParallelVsSequential: forcing multiple workers over a seed set
// small enough that the auto-heuristic would stay sequential must not
// change the result bag.
func TestParallelVsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	st := randomGraph(rng, 300)
	st.Freeze()
	defer func() { Workers = 0 }()
	for qi, text := range diffQueries {
		q, err := sparql.ParseDatalog(text, px())
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		Workers = 1
		seq, err := EvalBag(st, q)
		if err != nil {
			t.Fatal(err)
		}
		Workers = 4
		par, err := EvalBag(st, q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(canonicalRows(seq), canonicalRows(par)) {
			t.Fatalf("query %d: parallel evaluation diverged (%d vs %d rows)",
				qi, seq.Len(), par.Len())
		}
	}
}
