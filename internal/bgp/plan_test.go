package bgp

// Operator-choice tests: which physical operator the planner selects
// for chain, star and mixed shapes at varying boundness, on frozen and
// unfrozen stores.

import (
	"fmt"
	"strings"
	"testing"

	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// planGraph holds a few subjects with attribute predicates a0..a3 whose
// objects come from small domains, plus chain edges — enough statistics
// for every shape below to plan non-trivially.
func planGraph() *store.Store {
	st := store.New()
	for i := 0; i < 40; i++ {
		s := iri(fmt.Sprintf("s%d", i))
		st.Add(rdf.NewTriple(s, iri("a0"), iri(fmt.Sprintf("v0_%d", i%2))))
		st.Add(rdf.NewTriple(s, iri("a1"), iri(fmt.Sprintf("v1_%d", i%3))))
		st.Add(rdf.NewTriple(s, iri("a2"), iri(fmt.Sprintf("v2_%d", i%4))))
		st.Add(rdf.NewTriple(s, iri("a3"), iri(fmt.Sprintf("v3_%d", i%5))))
		st.Add(rdf.NewTriple(s, iri("next"), iri(fmt.Sprintf("s%d", (i+1)%40))))
	}
	st.Freeze()
	return st
}

func explainString(t *testing.T, st *store.Store, src string) string {
	t.Helper()
	q := sparql.MustParseDatalog(src, px())
	ops, err := Explain(st, q)
	if err != nil {
		t.Fatalf("Explain(%s): %v", src, err)
	}
	return strings.Join(ops, ",")
}

func TestPlannerOperatorChoice(t *testing.T) {
	st := planGraph()
	cases := []struct {
		name, query, want string
	}{
		// Frozen-store plans always end with the sort property the batch
		// pipeline guarantees: "sorted!(...)" lists the variables the
		// output is strictly lexicographically ordered by.
		//
		// Two constant-object patterns sharing the subject: merge join.
		{"star2", "q(x) :- x :a0 :v0_0, x :a1 :v1_0", "merge,sorted!(x)"},
		// k >= 3 such patterns: leapfrog.
		{"star3", "q(x) :- x :a0 :v0_0, x :a1 :v1_0, x :a2 :v2_0", "leapfrog,sorted!(x)"},
		{"star4", "q(x) :- x :a0 :v0_0, x :a1 :v1_0, x :a2 :v2_0, x :a3 :v3_0", "leapfrog,sorted!(x)"},
		// A chain never has two patterns sorted on the shared variable,
		// but once y is bound the second hop has one bound variable, one
		// constant and one free tail: a PSO stream step.
		{"chain", "q(x, z) :- x :next y, y :next z", "nested,stream,sorted!(y,x,z)"},
		// Mixed star: the constant rays intersect via leapfrog; the open
		// ray (free object) streams through one shared cursor per batch.
		{"mixed-star", "q(x, w) :- x :a0 :v0_0, x :a1 :v1_0, x :a2 :v2_0, x :a3 w", "leapfrog,stream,sorted!(x,w)"},
		// Boundness propagation: binding x through the selective first
		// pattern makes the two w-rays cursor-eligible — a per-row merge.
		{"row-merge", "q(x, w) :- x :a0 :v0_0, x :a1 w, x :a2 w", "nested,merge,sorted!(x,w)"},
		// Patterns on disjoint variables: cross product, nested (two
		// bound-variable-free positions — not stream-eligible).
		{"cross", "q(x, y) :- x :a0 :v0_0, y :a1 :v1_0", "nested,nested,sorted!(y,x)"},
		// A repeated variable inside a pattern disqualifies it from
		// cursor groups and from streaming.
		{"self-loop", "q(x) :- x :next x, x :a0 :v0_0", "nested,nested,sorted!(x)"},
		// One pattern alone is always a nested scan.
		{"single", "q(x, w) :- x :a0 w", "nested,sorted!(w,x)"},
		// Cost gate + ordering propagation: the one-row lookup seeds
		// first (the big x-rays are NOT intersected up front); binding y
		// then makes the chain edge itself cursor-eligible, so the rays
		// are intersected per row through its one-row cursor.
		{"selective-first", "q(x, y) :- :s0 :next y, y :next x, x :a0 :v0_0, x :a1 :v1_0",
			"nested,leapfrog,sorted!(y,x)"},
		// A selective pattern that is itself group-eligible joins the
		// intersection instead (its one-row cursor bounds the work).
		{"selective-in-star", "q(x) :- :s0 :next x, x :a0 :v0_0, x :a1 :v1_0", "leapfrog,sorted!(x)"},
	}
	for _, tc := range cases {
		if got := explainString(t, st, tc.query); got != tc.want {
			t.Errorf("%s: plan = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestPlannerUnfrozenAllNested: the cursor operators need the frozen
// permutations; the map-indexed store plans nested-only.
func TestPlannerUnfrozenAllNested(t *testing.T) {
	st := planGraph()
	st.Thaw()
	got := explainString(t, st, "q(x) :- x :a0 :v0_0, x :a1 :v1_0, x :a2 :v2_0")
	if got != "nested,nested,nested" {
		t.Fatalf("unfrozen plan = %q, want nested-only", got)
	}
}

// TestPlannerForceNested: the differential knob must pin every step.
func TestPlannerForceNested(t *testing.T) {
	st := planGraph()
	q := sparql.MustParseDatalog("q(x) :- x :a0 :v0_0, x :a1 :v1_0, x :a2 :v2_0", px())
	compiled, vars, err := compile(st, q.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	steps := planPipeline(st, compiled, len(vars), true)
	for _, s := range steps {
		if s.kind != opNested {
			t.Fatalf("ForceNestedLoop plan contains %s", s.kind)
		}
	}
	if len(steps) != 3 {
		t.Fatalf("got %d steps, want 3", len(steps))
	}
}

// TestPlannerDelta: cursor operators stay available with a pending
// delta overlay (the cursors merge it).
func TestPlannerDelta(t *testing.T) {
	st := planGraph()
	st.Add(rdf.NewTriple(iri("extra"), iri("a0"), iri("v0_0")))
	if st.DeltaLen() == 0 {
		t.Fatal("write did not land in the delta overlay")
	}
	got := explainString(t, st, "q(x) :- x :a0 :v0_0, x :a1 :v1_0, x :a2 :v2_0")
	if got != "leapfrog,sorted!(x)" {
		t.Fatalf("plan with delta = %q, want leapfrog", got)
	}
}

// TestPlannerGroupPreference: with two competing groups the planner
// takes the larger one first.
func TestPlannerGroupPreference(t *testing.T) {
	st := planGraph()
	got := explainString(t, st,
		"q(x, y) :- x :a0 :v0_0, x :a1 :v1_0, x :a2 :v2_0, y :a0 :v0_1, y :a1 :v1_1")
	if got != "leapfrog,merge,sorted!(x,y)" {
		t.Fatalf("plan = %q, want leapfrog,merge", got)
	}
}
