package bgp

// Differential tests of the cursor join engine: for every query shape,
// the merge-join and leapfrog paths must return byte-identical results
// (after canonical row sort) to the nested-loop reference, on
// frozen-only and frozen+delta stores — plus a fuzz-ish sweep over
// random graphs and random BGPs.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// diffTriples generates the random attribute/edge triples the
// differential graphs are built from.
func diffTriples(rng *rand.Rand, n int) []rdf.Triple {
	var ts []rdf.Triple
	for i := 0; i < n; i++ {
		s := iri(fmt.Sprintf("s%d", rng.Intn(20)))
		var tr rdf.Triple
		switch rng.Intn(4) {
		case 0:
			tr = rdf.NewTriple(s, iri(fmt.Sprintf("a%d", rng.Intn(4))), iri(fmt.Sprintf("v%d", rng.Intn(5))))
		case 1:
			tr = rdf.NewTriple(s, iri("next"), iri(fmt.Sprintf("s%d", rng.Intn(20))))
		case 2:
			tr = rdf.NewTriple(s, rdf.Type, iri(fmt.Sprintf("C%d", rng.Intn(3))))
		default:
			tr = rdf.NewTriple(s, iri(fmt.Sprintf("a%d", rng.Intn(4))), s) // self reference
		}
		ts = append(ts, tr)
	}
	return ts
}

// diffGraph generates a random attribute/edge graph. Half the triples
// land before Freeze (the frozen base), half after (the delta overlay)
// when split is true.
func diffGraph(rng *rand.Rand, n int, split bool) *store.Store {
	st := store.New()
	ts := diffTriples(rng, n)
	cut := len(ts)
	if split {
		cut = len(ts) / 2
	}
	for _, tr := range ts[:cut] {
		st.Add(tr)
	}
	st.Freeze()
	for _, tr := range ts[cut:] {
		st.Add(tr)
	}
	return st
}

// diffShapes are the eight query shapes of the differential matrix,
// spanning every operator combination the planner produces.
var diffShapes = []struct{ name, query string }{
	{"star2-merge", "q(x) :- x :a0 :v0, x :a1 :v1"},
	{"star3-leapfrog", "q(x) :- x :a0 :v0, x :a1 :v1, x :a2 :v2"},
	{"star5-leapfrog", "q(x) :- x :a0 :v0, x :a1 :v1, x :a2 :v2, x :a3 :v3, x rdf:type :C0"},
	{"chain-nested", "q(x, z) :- x :next y, y :next z"},
	{"mixed-star", "q(x, w) :- x :a0 :v0, x :a1 :v1, x :a2 w"},
	{"row-merge", "q(x, w) :- x rdf:type :C0, x :a1 w, x :a2 w"},
	{"cross-groups", "q(x, y) :- x :a0 :v0, x :a1 :v1, y :a2 :v2, y :a3 :v3"},
	{"self-loop", "q(x) :- x :a0 x, x :a1 :v1"},
}

// evalBoth evaluates q under the default engine (the batch pipeline on
// frozen stores), the pinned row pipeline, and the nested-loop
// reference — all canonically sorted. The default and row-pipeline
// results are asserted identical here, so every differential test in
// the package is automatically a three-way engine comparison.
func evalBoth(t *testing.T, st *store.Store, q *sparql.Query, bag bool) (*Result, *Result) {
	t.Helper()
	opts := Options{Distinct: !bag}
	cur, err := Eval(st, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.RowPipeline = true
	row, err := Eval(st, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.RowPipeline = false
	opts.ForceNestedLoop = true
	ref, err := Eval(st, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	cur.SortRows()
	row.SortRows()
	ref.SortRows()
	requireIdentical(t, "batch-vs-row-pipeline", cur, row)
	return cur, ref
}

func requireIdentical(t *testing.T, label string, cur, ref *Result) {
	t.Helper()
	if len(cur.Vars) != len(ref.Vars) {
		t.Fatalf("%s: vars %v vs %v", label, cur.Vars, ref.Vars)
	}
	for i := range cur.Vars {
		if cur.Vars[i] != ref.Vars[i] {
			t.Fatalf("%s: vars %v vs %v", label, cur.Vars, ref.Vars)
		}
	}
	if cur.Len() != ref.Len() {
		t.Fatalf("%s: %d rows vs %d (nested)", label, cur.Len(), ref.Len())
	}
	for i := range cur.Rows {
		if !idRowsEqual(cur.Rows[i], ref.Rows[i]) {
			t.Fatalf("%s: row %d differs: %v vs %v", label, i, cur.Rows[i], ref.Rows[i])
		}
	}
}

// TestCursorJoinDifferentialShapes runs the 8-shape matrix on
// frozen-only and frozen+delta stores, set and bag semantics.
func TestCursorJoinDifferentialShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 12; trial++ {
		for _, split := range []bool{false, true} {
			st := diffGraph(rng, 150+rng.Intn(250), split)
			if split && st.DeltaLen() == 0 {
				t.Fatal("split store has no delta overlay")
			}
			for _, shape := range diffShapes {
				q := sparql.MustParseDatalog(shape.query, px())
				for _, bag := range []bool{false, true} {
					label := fmt.Sprintf("trial %d split=%v %s bag=%v", trial, split, shape.name, bag)
					cur, ref := evalBoth(t, st, q, bag)
					requireIdentical(t, label, cur, ref)
				}
			}
		}
	}
}

// renderRows decodes a result's rows against its own store's dictionary
// and returns them canonically sorted — comparable across stores whose
// term IDs differ (heap vs mapped).
func renderRows(t *testing.T, st *store.Store, r *Result) []string {
	t.Helper()
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for j, id := range row {
			term, ok := st.Dict().Decode(id)
			if !ok {
				t.Fatalf("dangling term ID %d in result row", id)
			}
			parts[j] = fmt.Sprintf("%v", term)
		}
		out = append(out, strings.Join(parts, "\t"))
	}
	sort.Strings(out)
	return out
}

// TestMappedVsHeapDifferentialShapes runs the 8-shape matrix over the
// SAME triples served two ways — heap columns and an mmap'd v3 snapshot
// (tiny block and term caches, so every shape churns through eviction)
// — on frozen-only and frozen+delta stores, all three engines. The
// backing must be invisible: decoded results byte-identical.
func TestMappedVsHeapDifferentialShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	dir := t.TempDir()
	for trial := 0; trial < 4; trial++ {
		for _, split := range []bool{false, true} {
			ts := diffTriples(rng, 150+rng.Intn(250))
			cut := len(ts)
			if split {
				cut = len(ts) / 2
			}
			heap := store.New()
			base := store.New()
			for _, tr := range ts[:cut] {
				heap.Add(tr)
				base.Add(tr)
			}
			heap.Freeze()
			base.Freeze()
			path := filepath.Join(dir, fmt.Sprintf("t%d-%v.snap", trial, split))
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := base.WriteFrozenBaseV3(f); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			mapped, err := store.OpenFrozenSnapshotMapped(path, store.MappedOptions{
				BlockCacheSlots: 8, TermCacheSlots: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !mapped.Mapped() {
				t.Fatal("v3 snapshot did not open mapped")
			}
			for _, tr := range ts[cut:] {
				heap.Add(tr)
				mapped.Add(tr)
			}
			for _, shape := range diffShapes {
				q := sparql.MustParseDatalog(shape.query, px())
				for _, bag := range []bool{false, true} {
					label := fmt.Sprintf("trial %d split=%v %s bag=%v", trial, split, shape.name, bag)
					hc, href := evalBoth(t, heap, q, bag)
					requireIdentical(t, label+" (heap)", hc, href)
					mc, mref := evalBoth(t, mapped, q, bag)
					requireIdentical(t, label+" (mapped)", mc, mref)
					hr := renderRows(t, heap, hc)
					mr := renderRows(t, mapped, mc)
					if len(hr) != len(mr) {
						t.Fatalf("%s: heap %d rows, mapped %d", label, len(hr), len(mr))
					}
					for i := range hr {
						if hr[i] != mr[i] {
							t.Fatalf("%s: row %d differs:\n heap   %s\n mapped %s", label, i, hr[i], mr[i])
						}
					}
				}
			}
			mapped.CloseMapped()
		}
	}
}

// TestCursorJoinDifferentialPlans double-checks that the matrix really
// exercises the cursor operators (a plan regression would silently turn
// the differential into nested-vs-nested).
func TestCursorJoinDifferentialPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	st := diffGraph(rng, 400, false)
	wantCursor := map[string]string{
		"star2-merge":    "merge",
		"star3-leapfrog": "leapfrog",
		"star5-leapfrog": "leapfrog",
		"mixed-star":     "merge",
		"row-merge":      "merge",
		"cross-groups":   "merge",
	}
	for _, shape := range diffShapes {
		ops, err := Explain(st, sparql.MustParseDatalog(shape.query, px()))
		if err != nil {
			t.Fatal(err)
		}
		plan := strings.Join(ops, ",")
		if op, ok := wantCursor[shape.name]; ok && !strings.Contains(plan, op) {
			t.Errorf("%s: plan %q no longer uses %s", shape.name, plan, op)
		}
	}
}

// TestCursorJoinFuzzDifferential: random small graphs, random BGPs of
// 2-5 patterns with random variable/constant positions — cursor engine
// vs nested reference.
func TestCursorJoinFuzzDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vars := []string{"x", "y", "z", "w"}
	consts := []string{":s1", ":s2", ":v0", ":v1", ":v2"}
	preds := []string{":a0", ":a1", ":a2", ":next"}
	trials := 150
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		st := diffGraph(rng, 60+rng.Intn(200), rng.Intn(2) == 0)
		np := 2 + rng.Intn(4)
		pats := make([]string, np)
		seen := map[string]bool{}
		for i := range pats {
			term := func(pool []string) string {
				if rng.Intn(2) == 0 {
					v := vars[rng.Intn(len(vars))]
					seen[v] = true
					return v
				}
				return pool[rng.Intn(len(pool))]
			}
			s := term(consts)
			p := preds[rng.Intn(len(preds))]
			if rng.Intn(4) == 0 {
				p = vars[rng.Intn(len(vars))]
				seen[p] = true
			}
			o := term(consts)
			pats[i] = fmt.Sprintf("%s %s %s", s, p, o)
		}
		if len(seen) == 0 {
			continue // fully ground body; head needs a variable
		}
		var head []string
		for _, v := range vars {
			if seen[v] {
				head = append(head, v)
			}
		}
		src := fmt.Sprintf("q(%s) :- %s", strings.Join(head, ", "), strings.Join(pats, ", "))
		q, err := sparql.ParseDatalog(src, px())
		if err != nil {
			t.Fatalf("trial %d: bad query %q: %v", trial, src, err)
		}
		for _, bag := range []bool{false, true} {
			cur, ref := evalBoth(t, st, q, bag)
			requireIdentical(t, fmt.Sprintf("trial %d %q bag=%v", trial, src, bag), cur, ref)
		}
	}
}
