package bgp

// The parallel projection path must be byte-identical — rows AND order —
// to the sequential one, for bag and distinct semantics.

import (
	"math/rand"
	"testing"

	"rdfcube/internal/dict"
)

func randomResult(rng *rand.Rand, rows, width, domain int) *Result {
	vars := make([]string, width)
	for i := range vars {
		vars[i] = string(rune('a' + i))
	}
	res := &Result{Vars: vars, Rows: make([][]dict.ID, rows)}
	for i := range res.Rows {
		row := make([]dict.ID, width)
		for j := range row {
			row[j] = dict.ID(1 + rng.Intn(domain))
		}
		res.Rows[i] = row
	}
	return res
}

func sameResults(a, b *Result) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Rows {
		if !idRowsEqual(a.Rows[i], b.Rows[i]) {
			return false
		}
	}
	return true
}

func TestProjectParallelMatchesSequential(t *testing.T) {
	defer func() { Workers = 0 }()
	rng := rand.New(rand.NewSource(17))
	for _, tc := range []struct{ rows, width, domain int }{
		{50, 3, 2},      // tiny, many duplicates
		{5000, 4, 3},    // heavy duplication
		{40000, 4, 50},  // exceeds the auto-parallel threshold
		{3000, 1, 2000}, // mostly distinct
		{100, 0, 1},     // zero-width projection
	} {
		res := randomResult(rng, tc.rows, tc.width, maxI(tc.domain, 1))
		projVars := res.Vars[:tc.width-tc.width/2]
		if tc.width == 0 {
			projVars = nil
		}
		for _, distinct := range []bool{false, true} {
			Workers = 1
			seq, err := res.Project(projVars, distinct)
			if err != nil {
				t.Fatal(err)
			}
			Workers = 4
			par, err := res.Project(projVars, distinct)
			if err != nil {
				t.Fatal(err)
			}
			if !sameResults(seq, par) {
				t.Fatalf("rows=%d width=%d distinct=%v: parallel projection diverged (%d vs %d rows)",
					tc.rows, tc.width, distinct, seq.Len(), par.Len())
			}
			Workers = 0 // auto heuristic must agree too
			auto, err := res.Project(projVars, distinct)
			if err != nil {
				t.Fatal(err)
			}
			if !sameResults(seq, auto) {
				t.Fatalf("rows=%d width=%d distinct=%v: auto-parallel projection diverged", tc.rows, tc.width, distinct)
			}
		}
	}
}
