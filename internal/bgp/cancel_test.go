package bgp

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// crossGraph builds a store where "q(x, y, z, w) :- x :p y, z :q w" is a
// pure cross product: n rows per pattern, n*n result rows. Big enough to
// keep the evaluator busy for much longer than any cancellation latency.
func crossGraph(n int) *store.Store {
	st := store.New()
	for i := 0; i < n; i++ {
		st.Add(rdf.NewTriple(iri(fmt.Sprintf("a%d", i)), iri("p"), iri(fmt.Sprintf("b%d", i))))
		st.Add(rdf.NewTriple(iri(fmt.Sprintf("c%d", i)), iri("q"), iri(fmt.Sprintf("d%d", i))))
	}
	return st
}

func crossQuery() *sparql.Query {
	return sparql.MustParseDatalog("q(x, y, z, w) :- x :p y, z :q w", px())
}

func TestEvalCtxPreCancelled(t *testing.T) {
	st := crossGraph(2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := EvalSetCtx(ctx, st, crossQuery())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancelled eval took %v; cooperative checks not firing", el)
	}
}

func TestEvalCtxDeadline(t *testing.T) {
	st := crossGraph(2000)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := EvalSetCtx(ctx, st, crossQuery())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("deadline eval took %v; cooperative checks not firing", el)
	}
}

// A background context must not change results: ctx plumbing is free when
// unused.
func TestEvalCtxBackgroundMatchesEval(t *testing.T) {
	st := crossGraph(40)
	q := crossQuery()
	plain, err := EvalSet(st, q)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := EvalSetCtx(context.Background(), st, q)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Len() != 40*40 || ctxed.Len() != plain.Len() {
		t.Fatalf("rows: plain %d ctx %d, want %d", plain.Len(), ctxed.Len(), 40*40)
	}
}
