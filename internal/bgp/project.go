package bgp

// Head projection over evaluation results. Small results run the
// classic single-pass loop; wide results partition across workers with
// the same per-worker arena pattern evalBody uses, so the projection
// and the distinct filter stop being the serial tail of a parallel
// evaluation.
//
// The parallel distinct path stays deterministic and byte-identical to
// the sequential one: rows are projected and hashed in index order
// (chunked), then deduplicated by partitioning the HASH space across
// workers — identical rows hash identically, so every duplicate pair
// meets inside one partition, and each partition keeps the
// first-occurring index. Survivors are emitted in input order, which is
// exactly the sequential first-occurrence order.
//
// When the input carries a sort property (batch engine, eval.go), the
// distinct filter downgrades to something cheaper: if the result is
// strict over its sorted variables and the projection keeps them all,
// no deduplication is needed at all; if the projected variables are
// exactly a sorted prefix, duplicates are adjacent and a run detector
// replaces the hash table. Both fast paths keep first-occurrence order
// (it coincides with the sorted order), so output stays byte-identical
// to the hash path.

import (
	"fmt"
	"runtime"
	"sync"

	"rdfcube/internal/dict"
)

// parallelProjectMinRows is the input size below which projection stays
// sequential (fan-out overhead dominates under it).
const parallelProjectMinRows = 16384

// Project returns a new result with only the named columns, in order.
// Under distinct, duplicate projected rows are collapsed (set
// semantics) keeping the first occurrence, and the dedup set stores
// 64-bit hashes (verified against the emitted rows on collision)
// instead of string keys.
func (r *Result) Project(vars []string, distinct bool) (*Result, error) {
	cols := make([]int, len(vars))
	for i, v := range vars {
		c := r.Column(v)
		if c < 0 {
			return nil, fmt.Errorf("bgp: projection variable %q not in result", v)
		}
		cols[i] = c
	}
	out := &Result{Vars: append([]string(nil), vars...)}

	// Ordering-aware dedup downgrade; see the package comment.
	skipDedup, runDedup := false, 0
	if distinct {
		if r.sortedCovers(vars) {
			skipDedup = true
		} else if k := r.sortedRunPrefix(vars); k > 0 {
			runDedup = k
		}
	}
	hashDedup := distinct && !skipDedup && runDedup == 0

	nw := projectWorkers(len(r.Rows))
	if nw > 1 {
		out.Rows = r.projectParallel(cols, hashDedup, nw)
	} else {
		out.Rows = make([][]dict.ID, 0, len(r.Rows))
		ar := newRowArena(len(cols))
		buf := make([]dict.ID, len(cols))
		var buckets map[uint64][]int
		if hashDedup {
			buckets = make(map[uint64][]int, len(r.Rows))
		}
		for _, row := range r.Rows {
			for i, c := range cols {
				buf[i] = row[c]
			}
			if hashDedup {
				h := hashIDs(buf)
				dup := false
				for _, idx := range buckets[h] {
					if idRowsEqual(out.Rows[idx], buf) {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				buckets[h] = append(buckets[h], len(out.Rows))
			}
			nr := ar.newRow()
			copy(nr, buf)
			out.Rows = append(out.Rows, nr)
		}
	}
	if runDedup > 0 {
		out.Rows = dedupAdjacentRows(out.Rows)
	}

	// Propagate the sort property through the projection.
	switch {
	case skipDedup:
		out.Sorted = append([]string(nil), r.Sorted...)
		out.Strict = true
	case runDedup > 0:
		out.Sorted = append([]string(nil), r.Sorted[:runDedup]...)
		out.Strict = true
	case !distinct:
		// Bag: the longest sorted prefix fully kept by the projection
		// still orders the output; strictness survives only when the
		// whole prefix does.
		k := 0
		for k < len(r.Sorted) && containsStr(vars, r.Sorted[k]) {
			k++
		}
		out.Sorted = append([]string(nil), r.Sorted[:k]...)
		out.Strict = r.Strict && k == len(r.Sorted)
	}
	return out, nil
}

// sortedCovers reports whether dropping deduplication is safe: the
// result is strict over its sorted variables and vars retains every one
// of them, so projected rows are already distinct.
func (r *Result) sortedCovers(vars []string) bool {
	if !r.Strict || len(r.Sorted) == 0 {
		return false
	}
	for _, s := range r.Sorted {
		if !containsStr(vars, s) {
			return false
		}
	}
	return true
}

// sortedRunPrefix returns k > 0 when set(vars) equals set(Sorted[:k]):
// the projected rows are then ordered by exactly the projected
// variables, so duplicate projections are adjacent.
func (r *Result) sortedRunPrefix(vars []string) int {
	k := len(vars)
	if k == 0 || k > len(r.Sorted) {
		return 0
	}
	prefix := r.Sorted[:k]
	for _, s := range prefix {
		if !containsStr(vars, s) {
			return 0
		}
	}
	for _, v := range vars {
		if !containsStr(prefix, v) {
			return 0
		}
	}
	return k
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// dedupAdjacentRows collapses runs of equal rows in place, keeping the
// first of each run — the full distinct semantics when equal rows are
// known to be adjacent.
func dedupAdjacentRows(rows [][]dict.ID) [][]dict.ID {
	w := 0
	for i, row := range rows {
		if i > 0 && idRowsEqual(row, rows[w-1]) {
			continue
		}
		rows[w] = row
		w++
	}
	return rows[:w]
}

// projectWorkers sizes the projection fan-out: the Workers override, or
// GOMAXPROCS capped so every worker gets a meaningful chunk.
func projectWorkers(rows int) int {
	nw := Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
		if max := rows / parallelProjectMinRows; nw > max {
			nw = max
		}
	}
	if nw > rows {
		nw = rows
	}
	return nw
}

// projectParallel is the fan-out path: project (and hash) in index
// order across contiguous chunks — each chunk worker also bucketing its
// row indexes by hash partition — then, under distinct, dedup one
// partition per worker and compact survivors in input order.
func (r *Result) projectParallel(cols []int, distinct bool, nw int) [][]dict.ID {
	n := len(r.Rows)
	proj := make([][]dict.ID, n)
	var hashes []uint64
	// chunkParts[c][p] lists chunk c's row indexes hashing to partition
	// p, ascending; concatenated across chunks (in order) they stay
	// ascending, so each partition owner sees its rows in input order
	// without rescanning the whole hash array.
	var chunkParts [][][]int
	if distinct {
		hashes = make([]uint64, n)
		chunkParts = make([][][]int, nw)
	}
	var wg sync.WaitGroup
	chunk := (n + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			ar := newRowArena(len(cols))
			var parts [][]int
			if distinct {
				parts = make([][]int, nw)
			}
			for i := lo; i < hi; i++ {
				row := r.Rows[i]
				nr := ar.newRow()
				for j, c := range cols {
					nr[j] = row[c]
				}
				proj[i] = nr
				if distinct {
					h := hashIDs(nr)
					hashes[i] = h
					p := int(h % uint64(nw))
					parts[p] = append(parts[p], i)
				}
			}
			if distinct {
				chunkParts[w] = parts
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if !distinct {
		return proj
	}

	// Dedup: worker p owns its hash partition; indexes arrive ascending,
	// so the kept row of every duplicate class is the first occurrence.
	keep := make([]bool, n)
	for p := 0; p < nw; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			buckets := make(map[uint64][]int, n/nw+1)
			for _, parts := range chunkParts {
				if parts == nil {
					continue
				}
				for _, i := range parts[p] {
					h := hashes[i]
					dup := false
					for _, idx := range buckets[h] {
						if idRowsEqual(proj[idx], proj[i]) {
							dup = true
							break
						}
					}
					if !dup {
						buckets[h] = append(buckets[h], i)
						keep[i] = true
					}
				}
			}
		}(p)
	}
	wg.Wait()
	kept := 0
	for _, k := range keep {
		if k {
			kept++
		}
	}
	// Re-copy survivors into a fresh arena: the projection arenas hold
	// every duplicate too, and returning slices into them would pin
	// memory proportional to the input (the sequential path only ever
	// commits survivors). One extra pass over the kept rows.
	out := make([][]dict.ID, 0, kept)
	ar := newRowArena(len(cols))
	for i, k := range keep {
		if k {
			nr := ar.newRow()
			copy(nr, proj[i])
			out = append(out, nr)
		}
	}
	return out
}
