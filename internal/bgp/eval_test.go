package bgp

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"rdfcube/internal/dict"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

const ns = "http://e.org/"

func iri(s string) rdf.Term { return rdf.NewIRI(ns + s) }

func px() sparql.Prefixes {
	p := sparql.DefaultPrefixes()
	p[""] = ns
	return p
}

func smallGraph() *store.Store {
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }
	// alice -knows-> bob -knows-> carol; everyone typed Person;
	// ages: alice 30, bob 25; carol has no age (heterogeneous).
	add(iri("alice"), rdf.Type, iri("Person"))
	add(iri("bob"), rdf.Type, iri("Person"))
	add(iri("carol"), rdf.Type, iri("Person"))
	add(iri("alice"), iri("knows"), iri("bob"))
	add(iri("bob"), iri("knows"), iri("carol"))
	add(iri("alice"), iri("age"), rdf.NewInt(30))
	add(iri("bob"), iri("age"), rdf.NewInt(25))
	return st
}

func decodeRows(t *testing.T, st *store.Store, res *Result) [][]string {
	t.Helper()
	var out [][]string
	for _, row := range res.Rows {
		var r []string
		for _, id := range row {
			term, ok := st.Dict().Decode(id)
			if !ok {
				t.Fatalf("unknown ID %d", id)
			}
			r = append(r, term.Value())
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

func TestEvalSingistlePattern(t *testing.T) {
	st := smallGraph()
	q := sparql.MustParseDatalog("q(x) :- x rdf:type :Person", px())
	res, err := EvalSet(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("got %d rows, want 3", res.Len())
	}
}

func TestEvalJoin(t *testing.T) {
	st := smallGraph()
	q := sparql.MustParseDatalog("q(x, z) :- x :knows y, y :knows z", px())
	res, err := EvalSet(st, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := decodeRows(t, st, res)
	if len(rows) != 1 || rows[0][0] != ns+"alice" || rows[0][1] != ns+"carol" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestEvalConstantObject(t *testing.T) {
	st := smallGraph()
	q := sparql.MustParseDatalog("q(x) :- x :age 30", px())
	res, err := EvalSet(st, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := decodeRows(t, st, res)
	if len(rows) != 1 || rows[0][0] != ns+"alice" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestEvalUnknownConstantEmpty(t *testing.T) {
	st := smallGraph()
	q := sparql.MustParseDatalog("q(x) :- x :age 999", px())
	res, err := EvalSet(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("unknown constant matched %d rows", res.Len())
	}
	// Unknown predicate too.
	q2 := sparql.MustParseDatalog("q(x) :- x :neverSeen y", px())
	res2, err := EvalSet(st, q2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != 0 {
		t.Fatalf("unknown predicate matched %d rows", res2.Len())
	}
}

func TestSetVsBagSemantics(t *testing.T) {
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }
	// u has 3 posts on 2 sites: bag projection onto (u, site) has 3 rows,
	// set projection 2.
	add(iri("u"), iri("wrote"), iri("p1"))
	add(iri("u"), iri("wrote"), iri("p2"))
	add(iri("u"), iri("wrote"), iri("p3"))
	add(iri("p1"), iri("on"), iri("s1"))
	add(iri("p2"), iri("on"), iri("s1"))
	add(iri("p3"), iri("on"), iri("s2"))
	q := sparql.MustParseDatalog("q(x, s) :- x :wrote p, p :on s", px())
	bag, err := EvalBag(st, q)
	if err != nil {
		t.Fatal(err)
	}
	set, err := EvalSet(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if bag.Len() != 3 {
		t.Errorf("bag size = %d, want 3", bag.Len())
	}
	if set.Len() != 2 {
		t.Errorf("set size = %d, want 2", set.Len())
	}
}

func TestVariablePredicate(t *testing.T) {
	st := smallGraph()
	q := sparql.MustParseDatalog("q(p) :- :alice p :bob", px())
	res, err := EvalSet(st, q)
	if err != nil {
		t.Fatal(err)
	}
	rows := decodeRows(t, st, res)
	if len(rows) != 1 || rows[0][0] != ns+"knows" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestRepeatedVariableInPattern(t *testing.T) {
	st := store.New()
	st.Add(rdf.NewTriple(iri("a"), iri("p"), iri("a"))) // self loop
	st.Add(rdf.NewTriple(iri("a"), iri("p"), iri("b")))
	st.Add(rdf.NewTriple(iri("b"), iri("p"), iri("b"))) // self loop
	q := sparql.MustParseDatalog("q(x) :- x :p x", px())
	res, err := EvalSet(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("self-loop query matched %d, want 2", res.Len())
	}
}

func TestRepeatedVariableBoundFirst(t *testing.T) {
	st := store.New()
	st.Add(rdf.NewTriple(iri("a"), iri("q"), iri("a")))
	st.Add(rdf.NewTriple(iri("a"), iri("p"), iri("a")))
	st.Add(rdf.NewTriple(iri("b"), iri("p"), iri("c")))
	// x bound by the first pattern, then x :p x must check both positions.
	q := sparql.MustParseDatalog("q(x) :- x :q a2, x :p x", px())
	res, err := EvalSet(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("matched %d, want 1", res.Len())
	}
}

func TestCrossProduct(t *testing.T) {
	st := store.New()
	st.Add(rdf.NewTriple(iri("a"), iri("p"), iri("b")))
	st.Add(rdf.NewTriple(iri("c"), iri("q"), iri("d")))
	q := sparql.MustParseDatalog("q(x, y) :- x :p b2, y :q d2", px())
	res, err := EvalSet(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("cross product size %d, want 1", res.Len())
	}
}

func TestProjectErrors(t *testing.T) {
	res := &Result{Vars: []string{"a"}, Rows: [][]dict.ID{{1}}}
	if _, err := res.Project([]string{"missing"}, false); err == nil {
		t.Error("projecting a missing variable must error")
	}
}

func TestKeepAllVars(t *testing.T) {
	st := smallGraph()
	q := sparql.MustParseDatalog("q(x) :- x :knows y", px())
	res, err := Eval(st, q, Options{KeepAllVars: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vars) != 2 {
		t.Fatalf("KeepAllVars kept %v", res.Vars)
	}
}

// TestEvalAgainstNaive cross-checks the evaluator against a brute-force
// enumerator on random graphs and random 2–3 pattern queries.
func TestEvalAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	preds := []string{"p", "q", "r"}
	for trial := 0; trial < 50; trial++ {
		st := store.New()
		type edge struct{ s, p, o string }
		var edges []edge
		for i := 0; i < 60; i++ {
			e := edge{
				s: fmt.Sprintf("n%d", rng.Intn(10)),
				p: preds[rng.Intn(len(preds))],
				o: fmt.Sprintf("n%d", rng.Intn(10)),
			}
			if st.Add(rdf.NewTriple(iri(e.s), iri(e.p), iri(e.o))) {
				edges = append(edges, e)
			}
		}
		// Random chain query: x p0 y, y p1 z (set semantics on (x,z)).
		p0, p1 := preds[rng.Intn(3)], preds[rng.Intn(3)]
		q := sparql.MustParseDatalog(
			fmt.Sprintf("q(x, z) :- x :%s y, y :%s z", p0, p1), px())
		res, err := EvalSet(st, q)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]bool{}
		for _, e1 := range edges {
			if e1.p != p0 {
				continue
			}
			for _, e2 := range edges {
				if e2.p == p1 && e2.s == e1.o {
					want[e1.s+"|"+e2.o] = true
				}
			}
		}
		got := map[string]bool{}
		for _, row := range res.Rows {
			a, _ := st.Dict().Decode(row[0])
			b, _ := st.Dict().Decode(row[1])
			got[a.Value()[len(ns):]+"|"+b.Value()[len(ns):]] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d pairs, want %d", trial, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: missing pair %s", trial, k)
			}
		}
		if res.Len() != len(want) {
			t.Fatalf("trial %d: set semantics returned %d rows for %d distinct", trial, res.Len(), len(want))
		}
	}
}

func TestSortRowsDeterministic(t *testing.T) {
	res := &Result{Vars: []string{"a", "b"}, Rows: [][]dict.ID{{3, 1}, {1, 2}, {1, 1}}}
	res.SortRows()
	want := [][]dict.ID{{1, 1}, {1, 2}, {3, 1}}
	for i := range want {
		if res.Rows[i][0] != want[i][0] || res.Rows[i][1] != want[i][1] {
			t.Fatalf("SortRows: %v", res.Rows)
		}
	}
}

func BenchmarkEvalTwoHopJoin(b *testing.B) {
	st := store.New()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		st.Add(rdf.NewTriple(
			iri(fmt.Sprintf("n%d", rng.Intn(5000))),
			iri("knows"),
			iri(fmt.Sprintf("n%d", rng.Intn(5000)))))
	}
	q := sparql.MustParseDatalog("q(x, z) :- x :knows y, y :knows z", px())
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EvalSet(st, q); err != nil {
			b.Fatal(err)
		}
	}
}
