package ans

import (
	"strings"
	"testing"

	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

const ns = "http://e.org/"

func iri(s string) rdf.Term { return rdf.NewIRI(ns + s) }

func px() sparql.Prefixes {
	p := sparql.DefaultPrefixes()
	p[""] = ns
	return p
}

// baseGraph builds a heterogeneous base: two people post, one is typed
// :Author, the other only recognizable through posting behavior.
func baseGraph() *store.Store {
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }
	add(iri("alice"), rdf.Type, iri("Author"))
	add(iri("alice"), iri("wrote"), iri("p1"))
	add(iri("bob"), iri("wrote"), iri("p2")) // untyped, heterogeneous
	add(iri("p1"), iri("on"), iri("s1"))
	add(iri("p2"), iri("on"), iri("s1"))
	add(iri("alice"), iri("city"), iri("Madrid"))
	return st
}

// testSchema defines Blogger as "anything that wrote something" — a lens
// that absorbs the heterogeneity.
func testSchema() *Schema {
	s := &Schema{Name: "test"}
	s.AddNode(iri("Blogger"), sparql.MustParseDatalog("n(x) :- x :wrote p", px()))
	s.AddNode(iri("Post"), sparql.MustParseDatalog("n(p) :- x :wrote p", px()))
	s.AddNode(iri("City"), sparql.MustParseDatalog("n(c) :- x :city c", px()))
	s.AddEdge(iri("wrotePost"), iri("Blogger"), iri("Post"),
		sparql.MustParseDatalog("e(x, p) :- x :wrote p", px()))
	s.AddEdge(iri("livesIn"), iri("Blogger"), iri("City"),
		sparql.MustParseDatalog("e(x, c) :- x :city c", px()))
	return s
}

func TestValidateOK(t *testing.T) {
	if err := testSchema().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mk := testSchema

	s := mk()
	s.AddNode(iri("Blogger"), sparql.MustParseDatalog("n(x) :- x :wrote p", px()))
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate class: %v", err)
	}

	s = mk()
	s.AddNode(iri("Bad"), sparql.MustParseDatalog("n(x, y) :- x :wrote y", px()))
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "unary") {
		t.Errorf("binary node query: %v", err)
	}

	s = mk()
	s.AddEdge(iri("bad"), iri("Blogger"), iri("Post"),
		sparql.MustParseDatalog("e(x) :- x :wrote y", px()))
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "binary") {
		t.Errorf("unary edge query: %v", err)
	}

	s = mk()
	s.AddEdge(iri("dangling"), iri("NoSuchClass"), iri("Post"),
		sparql.MustParseDatalog("e(x, y) :- x :wrote y", px()))
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("undeclared endpoint: %v", err)
	}

	s = mk()
	s.AddNode(rdf.NewLiteral("notAnIRI"), sparql.MustParseDatalog("n(x) :- x :wrote p", px()))
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "IRI") {
		t.Errorf("literal class: %v", err)
	}

	s = mk()
	s.Nodes = append(s.Nodes, Node{Class: iri("NilQuery")})
	if err := s.Validate(); err == nil {
		t.Error("nil node query accepted")
	}
}

func TestMaterialize(t *testing.T) {
	base := baseGraph()
	inst, err := testSchema().Materialize(base)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	// Both alice and bob become Bloggers — including untyped bob.
	for _, who := range []string{"alice", "bob"} {
		if !inst.Contains(rdf.NewTriple(iri(who), rdf.Type, iri("Blogger"))) {
			t.Errorf("%s missing from Blogger class", who)
		}
	}
	// Edge facts present.
	if !inst.Contains(rdf.NewTriple(iri("alice"), iri("wrotePost"), iri("p1"))) {
		t.Error("wrotePost edge missing")
	}
	if !inst.Contains(rdf.NewTriple(iri("alice"), iri("livesIn"), iri("Madrid"))) {
		t.Error("livesIn edge missing")
	}
	// bob has no livesIn — heterogeneity preserved, membership unaffected.
	if inst.Contains(rdf.NewTriple(iri("bob"), iri("livesIn"), iri("Madrid"))) {
		t.Error("bob wrongly gained a city")
	}
	// Instance shares the base dictionary.
	if inst.Dict() != base.Dict() {
		t.Error("instance must share the base dictionary")
	}
	// Base graph not polluted with analysis triples.
	if base.Contains(rdf.NewTriple(iri("bob"), rdf.Type, iri("Blogger"))) {
		t.Error("materialization mutated the base graph")
	}
}

func TestMaterializeEmptyBase(t *testing.T) {
	inst, err := testSchema().Materialize(store.New())
	if err != nil {
		t.Fatalf("Materialize on empty base: %v", err)
	}
	if inst.Len() != 0 {
		t.Errorf("empty base produced %d instance triples", inst.Len())
	}
}

func TestNodeEdgeLookup(t *testing.T) {
	s := testSchema()
	if s.Node(iri("Blogger")) == nil || s.Node(iri("Nope")) != nil {
		t.Error("Node lookup wrong")
	}
	if s.Edge(iri("wrotePost")) == nil || s.Edge(iri("nope")) != nil {
		t.Error("Edge lookup wrong")
	}
}

func TestCheckQuery(t *testing.T) {
	s := testSchema()
	ok := sparql.MustParseDatalog("c(x, c) :- x rdf:type :Blogger, x :livesIn c", px())
	if err := s.CheckQuery(ok); err != nil {
		t.Errorf("valid AnQ query rejected: %v", err)
	}
	badProp := sparql.MustParseDatalog("c(x) :- x :notInSchema y", px())
	if err := s.CheckQuery(badProp); err == nil {
		t.Error("non-schema property accepted")
	}
	badClass := sparql.MustParseDatalog("c(x) :- x rdf:type :NotAClass", px())
	if err := s.CheckQuery(badClass); err == nil {
		t.Error("non-schema class accepted")
	}
	varPred := &sparql.Query{Head: []string{"x"}, Patterns: []sparql.TriplePattern{
		{S: sparql.V("x"), P: sparql.V("p"), O: sparql.V("y")},
	}}
	if err := s.CheckQuery(varPred); err == nil {
		t.Error("variable predicate accepted")
	}
	varClass := &sparql.Query{Head: []string{"x"}, Patterns: []sparql.TriplePattern{
		{S: sparql.V("x"), P: sparql.C(rdf.Type), O: sparql.V("c")},
	}}
	if err := s.CheckQuery(varClass); err == nil {
		t.Error("variable rdf:type object accepted")
	}
}

func TestMaterializeIndependentNodeEdge(t *testing.T) {
	// A node query and an edge query that disagree: facts in the class
	// without edge values, and edge values for resources outside the
	// class. Both must materialize independently (Section 2: "completely
	// independent queries").
	base := store.New()
	add := func(s, p, o rdf.Term) { base.Add(rdf.NewTriple(s, p, o)) }
	add(iri("a"), rdf.Type, iri("T"))
	add(iri("b"), iri("val"), rdf.NewInt(3)) // not typed T
	s := &Schema{Name: "indep"}
	s.AddNode(iri("C"), sparql.MustParseDatalog("n(x) :- x rdf:type :T", px()))
	s.AddEdge(iri("hasVal"), iri("C"), iri("C"),
		sparql.MustParseDatalog("e(x, v) :- x :val v", px()))
	inst, err := s.Materialize(base)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Contains(rdf.NewTriple(iri("a"), rdf.Type, iri("C"))) {
		t.Error("class member missing")
	}
	if !inst.Contains(rdf.NewTriple(iri("b"), iri("hasVal"), rdf.NewInt(3))) {
		t.Error("edge fact for non-member missing; node and edge queries must be independent")
	}
}
