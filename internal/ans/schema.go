// Package ans implements analytical schemas (AnS) — the "lenses" of the
// RDF analytics framework the paper builds on.
//
// An AnS is a labeled directed graph: each node is an analysis class
// defined by a unary BGP query over the base RDF graph, each edge an
// analysis property defined by a binary BGP query. Node and edge queries
// are completely independent, which is what lets an AnS describe
// heterogeneous RDF data — a resource can belong to a class without
// having values for any of the class's properties.
//
// Materializing an AnS over a base graph produces its instance: an RDF
// graph (sharing the base dictionary) holding one `u rdf:type C` triple
// per node-query answer and one `s p o` triple per edge-query answer.
// Analytical queries are evaluated over this instance.
package ans

import (
	"fmt"

	"rdfcube/internal/bgp"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// Node is an analysis class: a class IRI plus its defining unary query.
type Node struct {
	// Class is the analysis class IRI introduced by the schema.
	Class rdf.Term
	// Query is the defining unary query (one head variable) over the
	// base graph.
	Query *sparql.Query
}

// Edge is an analysis property: a property IRI, its endpoints, and its
// defining binary query.
type Edge struct {
	// Property is the analysis property IRI introduced by the schema.
	Property rdf.Term
	// From and To name the class IRIs this edge connects in the schema
	// graph (informational; the framework does not constrain instances
	// to them).
	From, To rdf.Term
	// Query is the defining binary query (two head variables).
	Query *sparql.Query
}

// Schema is an analytical schema: a set of analysis classes and
// properties with their defining queries.
type Schema struct {
	Name  string
	Nodes []Node
	Edges []Edge
}

// AddNode declares an analysis class.
func (s *Schema) AddNode(class rdf.Term, q *sparql.Query) {
	s.Nodes = append(s.Nodes, Node{Class: class, Query: q})
}

// AddEdge declares an analysis property between two classes.
func (s *Schema) AddEdge(property, from, to rdf.Term, q *sparql.Query) {
	s.Edges = append(s.Edges, Edge{Property: property, From: from, To: to, Query: q})
}

// Node returns the node declaring class, or nil.
func (s *Schema) Node(class rdf.Term) *Node {
	for i := range s.Nodes {
		if s.Nodes[i].Class == class {
			return &s.Nodes[i]
		}
	}
	return nil
}

// Edge returns the edge declaring property, or nil.
func (s *Schema) Edge(property rdf.Term) *Edge {
	for i := range s.Edges {
		if s.Edges[i].Property == property {
			return &s.Edges[i]
		}
	}
	return nil
}

// Validate checks the schema: class/property IRIs well-formed and unique,
// node queries unary, edge queries binary, edge endpoints declared.
func (s *Schema) Validate() error {
	classes := map[rdf.Term]bool{}
	for _, n := range s.Nodes {
		if !n.Class.IsIRI() {
			return fmt.Errorf("ans: node class %s is not an IRI", n.Class)
		}
		if classes[n.Class] {
			return fmt.Errorf("ans: duplicate node class %s", n.Class)
		}
		classes[n.Class] = true
		if n.Query == nil {
			return fmt.Errorf("ans: node %s has no defining query", n.Class)
		}
		if err := n.Query.Validate(); err != nil {
			return fmt.Errorf("ans: node %s: %w", n.Class, err)
		}
		if len(n.Query.Head) != 1 {
			return fmt.Errorf("ans: node %s query must be unary, has %d head variables", n.Class, len(n.Query.Head))
		}
	}
	props := map[rdf.Term]bool{}
	for _, e := range s.Edges {
		if !e.Property.IsIRI() {
			return fmt.Errorf("ans: edge property %s is not an IRI", e.Property)
		}
		if props[e.Property] {
			return fmt.Errorf("ans: duplicate edge property %s", e.Property)
		}
		props[e.Property] = true
		if e.Query == nil {
			return fmt.Errorf("ans: edge %s has no defining query", e.Property)
		}
		if err := e.Query.Validate(); err != nil {
			return fmt.Errorf("ans: edge %s: %w", e.Property, err)
		}
		if len(e.Query.Head) != 2 {
			return fmt.Errorf("ans: edge %s query must be binary, has %d head variables", e.Property, len(e.Query.Head))
		}
		if e.From.IsValid() && !classes[e.From] {
			return fmt.Errorf("ans: edge %s references undeclared class %s", e.Property, e.From)
		}
		if e.To.IsValid() && !classes[e.To] {
			return fmt.Errorf("ans: edge %s references undeclared class %s", e.Property, e.To)
		}
	}
	return nil
}

// Materialize evaluates every node and edge query on base and returns
// the AnS instance as a new store sharing base's dictionary. The
// returned instance is frozen onto the read-optimized sorted indexes
// (later writes transparently invalidate); base is only read. Callers
// that own base and have finished loading it should base.Freeze()
// beforehand — the node/edge query evaluation is much faster on the
// frozen layout.
func (s *Schema) Materialize(base *store.Store) (*store.Store, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	d := base.Dict()
	inst := store.NewWithDict(d)
	typeID := d.Encode(rdf.Type)
	for _, n := range s.Nodes {
		classID := d.Encode(n.Class)
		res, err := bgp.EvalSet(base, n.Query)
		if err != nil {
			return nil, fmt.Errorf("ans: node %s: %w", n.Class, err)
		}
		for _, row := range res.Rows {
			inst.AddID(store.IDTriple{S: row[0], P: typeID, O: classID})
		}
	}
	for _, e := range s.Edges {
		propID := d.Encode(e.Property)
		res, err := bgp.EvalSet(base, e.Query)
		if err != nil {
			return nil, fmt.Errorf("ans: edge %s: %w", e.Property, err)
		}
		for _, row := range res.Rows {
			inst.AddID(store.IDTriple{S: row[0], P: propID, O: row[1]})
		}
	}
	inst.Freeze()
	return inst, nil
}

// CheckQuery verifies that q is homomorphic to the schema: every triple
// pattern either has predicate rdf:type with a declared analysis class as
// object, or a declared analysis property as predicate. Classifier and
// measure queries of analytical queries must pass this check.
func (s *Schema) CheckQuery(q *sparql.Query) error {
	classes := map[rdf.Term]bool{}
	for _, n := range s.Nodes {
		classes[n.Class] = true
	}
	props := map[rdf.Term]bool{}
	for _, e := range s.Edges {
		props[e.Property] = true
	}
	for _, tp := range q.Patterns {
		if tp.P.IsVar() {
			return fmt.Errorf("ans: pattern %s has a variable predicate; AnQ queries must use schema properties", tp)
		}
		p := tp.P.Term
		if p == rdf.Type {
			if tp.O.IsVar() {
				return fmt.Errorf("ans: pattern %s: rdf:type object must be a declared class", tp)
			}
			if !classes[tp.O.Term] {
				return fmt.Errorf("ans: pattern %s: %s is not a class of schema %q", tp, tp.O.Term, s.Name)
			}
			continue
		}
		if !props[p] {
			return fmt.Errorf("ans: pattern %s: %s is not a property of schema %q", tp, p, s.Name)
		}
	}
	return nil
}
