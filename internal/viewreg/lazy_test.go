package viewreg

// Lazy upgrade: registration stores the cheap plain form (answer + pres,
// no maintenance plumbing); the first write that finds the entry behind
// upgrades it to the maintained form and catches it up through the
// delta feed. Read-only workloads never pay the incremental-context
// build.

import (
	"bytes"
	"fmt"
	"testing"

	"rdfcube/internal/agg"
	"rdfcube/internal/algebra"
)

func TestLazyUpgradeOnFirstWrite(t *testing.T) {
	st := instance(12, 60)
	r := New(st, Config{})
	q := query(t, agg.Sum)

	if _, s, err := r.Answer(q); err != nil || s != StrategyDirect {
		t.Fatalf("first answer: strategy %v err %v", s, err)
	}
	if got := r.Stats().LazyUpgrades; got != 0 {
		t.Fatalf("LazyUpgrades = %d after registration, want 0 (plain form)", got)
	}

	// Read-only reuse serves the plain entry without upgrading it.
	cube, s, err := r.Answer(q.Clone())
	if err != nil || s != StrategyCached {
		t.Fatalf("read-only reuse: strategy %v err %v", s, err)
	}
	checkAgainstDirect(t, r, q, cube, "plain cached")
	if got := r.Stats().LazyUpgrades; got != 0 {
		t.Fatalf("LazyUpgrades = %d after read-only reuse, want 0", got)
	}

	// First write: the triage finds the plain entry behind and the
	// freshen pass upgrades + maintains it.
	newFact(st, 900, 1, 42)
	r.NotifyWrite()
	stats := r.Stats()
	if stats.LazyUpgrades != 1 {
		t.Fatalf("LazyUpgrades = %d after first write, want 1", stats.LazyUpgrades)
	}
	if stats.Maintained != 1 {
		t.Fatalf("Maintained = %d after first write, want 1", stats.Maintained)
	}
	cube, s, err = r.Answer(q.Clone())
	if err != nil || s != StrategyCached {
		t.Fatalf("post-upgrade answer: strategy %v err %v", s, err)
	}
	checkAgainstDirect(t, r, q, cube, "upgraded view")

	// Further writes maintain the (now upgraded) view without another
	// upgrade.
	newFact(st, 901, 2, 7)
	r.NotifyWrite()
	stats = r.Stats()
	if stats.LazyUpgrades != 1 {
		t.Fatalf("LazyUpgrades = %d after second write, want 1 (upgrade happens once)", stats.LazyUpgrades)
	}
	if stats.Maintained != 2 {
		t.Fatalf("Maintained = %d after second write, want 2", stats.Maintained)
	}
	if stats.ByStrategy[StrategyDirect] != 1 {
		t.Fatalf("direct evaluations = %d, want exactly 1", stats.ByStrategy[StrategyDirect])
	}
}

// TestLazyUpgradeAfterRestore: plain entries survive a Save/Restore
// cycle in plain form, answer read-only queries from the snapshot, and
// still upgrade lazily at their first write.
func TestLazyUpgradeAfterRestore(t *testing.T) {
	inst := instance(13, 80)
	reg := New(inst, Config{})
	q := query(t, agg.Sum)
	want, _, err := reg.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	var views bytes.Buffer
	if _, err := reg.Save(&views); err != nil {
		t.Fatal(err)
	}

	recovered := snapshotReload(t, inst)
	reg2 := New(recovered, Config{})
	n, err := reg2.Restore(bytes.NewReader(views.Bytes()))
	if err != nil || n != 1 {
		t.Fatalf("restored %d views, err %v", n, err)
	}
	got, s, err := reg2.Answer(q.Clone())
	if err != nil || s != StrategyCached {
		t.Fatalf("warmed answer: strategy %v err %v", s, err)
	}
	if !algebra.Equal(want, got) {
		t.Fatal("warmed cube differs from pre-restart cube")
	}
	if reg2.Stats().LazyUpgrades != 0 {
		t.Fatal("restore alone must not upgrade plain entries")
	}

	newFact(recovered, 950, 3, 11)
	reg2.NotifyWrite()
	stats := reg2.Stats()
	if stats.LazyUpgrades != 1 || stats.Maintained != 1 {
		t.Fatalf("after post-restore write: LazyUpgrades=%d Maintained=%d, want 1/1", stats.LazyUpgrades, stats.Maintained)
	}
	cube, s, err := reg2.Answer(q.Clone())
	if err != nil || s != StrategyCached {
		t.Fatalf("post-restore post-write answer: strategy %v err %v", s, err)
	}
	checkAgainstDirect(t, reg2, q, cube, fmt.Sprintf("restored+upgraded view (n=%d)", n))
}
