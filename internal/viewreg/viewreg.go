// Package viewreg implements a concurrency-safe, cross-session registry
// of materialized analytical views — the paper's problem statement
// (Figure 2) lifted from a single interactive session to a shared
// server: the pres(Q)/ans(Q) of every directly-evaluated query are
// registered under canonicalized fingerprints, and *any* client's
// SLICE/DICE/DRILL-OUT/DRILL-IN can then be answered from *another*
// client's materialized results via the syntactic rewriting detection:
//
//   - identical query          → the registered ans(Q) ("cached");
//   - SLICE/DICE refinement    → σ_dice over ans(Q) (Proposition 1);
//   - DRILL-OUT                → Algorithm 1 over pres(Q) (Proposition 2);
//   - DRILL-IN                 → Algorithm 2 over pres(Q) + q_aux
//     (Proposition 3);
//   - otherwise                → direct evaluation, after which the new
//     query's results are registered for future reuse.
//
// Four properties make the registry serve concurrent traffic:
//
//   - Single-flight direct evaluation: concurrent clients asking the
//     same cube (by canonical fingerprint) trigger exactly one direct
//     evaluation; followers block until the leader publishes and then
//     reuse its result.
//   - Cost-aware bounded memory: entries are LRU-evicted by estimated
//     byte footprint (and optionally by count), not entry count alone,
//     so one huge pres(Q) cannot silently pin the budget.
//   - Delta-aware maintenance: every entry is tagged with the store's
//     two-part (baseEpoch, deltaSeq) version at evaluation time. A write
//     that lands in the store's delta overlay leaves the base epoch
//     alone, and entries behind only on the delta sequence are
//     *maintained* — internal/incr applies the store's delta feed to the
//     registered pres(Q), and ans(Q) is re-aggregated from it — instead
//     of dropped, on lookup or on a write notification (NotifyWrite).
//     Only a base-epoch move (compaction, deletion, structural change)
//     or an unmaintainable entry falls back to eviction, so the registry
//     keeps paying view-maintenance cost instead of recomputation cost.
//   - Negative caching: a query that scanned its family and found no
//     applicable rewrite is remembered (by exact fingerprint, valid for
//     the store version it observed and until the next registration), so
//     repeated misses skip the candidate scan.
//
// Registered relations are immutable by convention: rewrites read them
// concurrently without locks, and callers must not mutate a returned
// cube that came from the registry (clone before sorting in place).
// Maintenance honors this by swapping fresh pres/ans snapshots into the
// entry rather than growing the published relations in place.
package viewreg

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rdfcube/internal/algebra"
	"rdfcube/internal/core"
	"rdfcube/internal/incr"
	"rdfcube/internal/obs"
	"rdfcube/internal/store"
)

// Strategy identifies how a query was answered.
type Strategy string

// The five answering strategies, in preference order.
const (
	StrategyCached   Strategy = "cached"
	StrategyDice     Strategy = "dice-rewrite"
	StrategyDrillOut Strategy = "drillout-rewrite"
	StrategyDrillIn  Strategy = "drillin-rewrite"
	StrategyDirect   Strategy = "direct"
)

// Strategies lists every strategy, for stats iteration.
var Strategies = []Strategy{
	StrategyCached, StrategyDice, StrategyDrillOut, StrategyDrillIn, StrategyDirect,
}

// WorkloadStats supplies per-shape observed traffic — the expected-
// reuse signal cost-based admission weighs against a view's byte
// footprint. Implemented by internal/obs/workload.Registry; kept as an
// interface so viewreg does not depend on the profiler package.
type WorkloadStats interface {
	// ShapeCost reports how many times the fingerprinted shape was
	// answered and its summed wall nanoseconds. ok is false for shapes
	// the profiler has not seen.
	ShapeCost(fp uint64) (calls, totalWallNs int64, ok bool)
}

// Config bounds a registry. Zero values mean unbounded.
type Config struct {
	// MaxBytes caps the estimated byte footprint of registered views;
	// least-recently-used entries are evicted past it. An entry larger
	// than the whole budget is not retained at all.
	MaxBytes int64
	// MaxEntries additionally caps the entry count (the legacy
	// session-manager bound).
	MaxEntries int
	// Metrics, when non-nil, receives the registry's process-wide
	// counters (answers by strategy, evictions, maintenance, ...).
	// Registration is idempotent in obs, so a server that swaps its
	// registry keeps accumulating into the same series.
	Metrics *obs.Registry
	// AdmissionCost switches registration from admit-always to the
	// paper's economics: a directly evaluated view is registered only
	// when its measured evaluation cost times the shape's expected
	// reuse (its observed call count in Workload) beats its byte
	// footprint. Eviction then ranks by benefit-per-byte (measured
	// rebuild cost × hits / bytes) instead of raw LRU.
	AdmissionCost bool
	// Workload, when set with AdmissionCost, supplies the expected-
	// reuse counts. Nil means every shape looks never-seen (reuse 0):
	// views are admitted on their second evaluation at the earliest.
	Workload WorkloadStats
	// AdmissionThreshold is the break-even price in evaluation
	// nanoseconds per retained byte (default 1.0): admit when
	// evalNs × reuse ≥ bytes × threshold.
	AdmissionThreshold float64
}

// entry is one registered materialization.
//
// Locking: mu serializes maintenance (the only mutation after
// registration). The mutable fields ver/pres/ans/bytes are written while
// holding BOTH mu and the registry lock, so holding either one is enough
// to read them consistently; the expensive delta evaluation itself runs
// under mu alone.
type entry struct {
	fam, key uint64
	query    *core.Query

	mu sync.Mutex
	// mp maintains pres(Q) through the store's delta feed. Entries
	// register WITHOUT it (a plain evaluation — read-only entries never
	// pay for the maintained form's key indexes) and upgrade lazily on
	// the first write that leaves them behind, while upgradable is set.
	// nil with upgradable false means the upgrade failed or the query is
	// unmaintainable; the entry is then dropped once it falls behind.
	mp         *incr.MaintainedPres
	upgradable bool
	pres       *algebra.Relation
	ans        *algebra.Relation
	bytes      int64
	ver        store.Version

	// costNs is the measured direct-evaluation cost at registration —
	// what eviction would make the next identical query pay again.
	// hits counts reuses (cached answers and rewrites) since
	// registration; both feed the benefit-per-byte eviction score.
	// Written under r.mu.
	costNs int64
	hits   int64

	elem *list.Element // position in the LRU list; nil once removed
}

// flight is one in-progress direct evaluation that followers wait on.
type flight struct {
	query *core.Query
	done  chan struct{}
	cube  *algebra.Relation
	err   error
}

// rewriteFlight is one in-progress rewrite scan (the candidate walk
// plus the σ_dice / Algorithm 1 / Algorithm 2 computation) that
// concurrent identical queries piggyback on instead of recomputing the
// same rewrite. A nil cube after done means the leader found no
// applicable rewrite (or failed); followers then fall through to the
// direct-evaluation phase, whose own single-flight coalesces them.
type rewriteFlight struct {
	query *core.Query
	epoch uint64
	done  chan struct{}
	// waiters counts parked followers; written under the registry lock
	// while the flight is still published, so it is final once the
	// leader unpublishes the flight and decides whether to pay for the
	// defensive copy below.
	waiters  int
	cube     *algebra.Relation
	strategy Strategy
}

// Stats is a point-in-time snapshot of registry counters.
type Stats struct {
	// Entries and Bytes describe the current contents.
	Entries int
	Bytes   int64
	// ByStrategy counts answered queries per strategy.
	ByStrategy map[Strategy]int64
	// Evictions counts entries dropped for the byte/count budget;
	// Invalidations counts entries dropped because the store's base
	// epoch moved past them (or they could not be maintained);
	// Coalesced counts queries that piggybacked on another client's
	// in-flight direct evaluation.
	Evictions     int64
	Invalidations int64
	Coalesced     int64
	// CoalescedRewrites counts queries that piggybacked on another
	// client's in-flight rewrite computation (e.g. N concurrent
	// identical DICEs computing σ_dice once).
	CoalescedRewrites int64
	// Maintained counts delta-feed maintenance applications: each is one
	// registered view caught up to the store's version instead of being
	// dropped and re-evaluated.
	Maintained int64
	// LazyUpgrades counts entries upgraded to the maintained form on
	// their first write (registration defers the costlier incremental
	// materialization until a write proves it is needed).
	LazyUpgrades int64
	// NegSkips counts candidate scans skipped by the negative cache.
	NegSkips int64
	// Admitted and Refused count cost-based admission decisions for
	// directly evaluated views (both zero when admission is admit-
	// always).
	Admitted int64
	Refused  int64
}

// Registry is a shared materialized-view registry over one AnS instance.
// All methods are safe for concurrent use; store *writes* must still be
// serialized against Answer calls by the caller (the server holds an
// RWMutex), with NotifyWrite maintaining or sweeping the registered
// views inside that write critical section.
type Registry struct {
	ev *core.Evaluator
	st *store.Store

	mu         sync.Mutex
	maxBytes   int64
	maxEntries int
	families   map[uint64][]*entry // per family, oldest first
	lru        *list.List          // *entry; front = most recently used
	bytes      int64
	inflight   map[uint64]*flight
	rwFlight   map[uint64]*rewriteFlight
	stats      map[Strategy]int64
	// negMiss remembers exact query fingerprints whose family scan found
	// no applicable rewrite, keyed to the packed store version observed;
	// cleared on registration.
	negMiss      map[uint64]uint64
	evictions    int64
	invalids     int64
	coalesced    int64
	coalescedRw  int64
	maintained   int64
	lazyUpgrades int64
	negSkips     int64
	admitted     int64
	refused      int64

	// Cost-based admission knobs (immutable after New).
	admissionCost  bool
	workload       WorkloadStats
	admissionPrice float64 // eval-ns per byte break-even

	// mx mirrors the counters above into an obs.Registry (zero value =
	// no-op; see metrics.go for the per-instance vs process-wide split).
	mx regMetrics
}

// negMissCap bounds the negative cache; the map resets past it.
const negMissCap = 4096

// notifyBatch bounds how many entries one NotifyWrite call sweeps or
// maintains; the rest catch up lazily at lookup.
const notifyBatch = 256

// New returns an empty registry over the given AnS instance.
func New(inst *store.Store, cfg Config) *Registry {
	price := cfg.AdmissionThreshold
	if price <= 0 {
		price = 1.0
	}
	return &Registry{
		ev:             core.NewEvaluator(inst),
		st:             inst,
		maxBytes:       cfg.MaxBytes,
		maxEntries:     cfg.MaxEntries,
		families:       map[uint64][]*entry{},
		lru:            list.New(),
		inflight:       map[uint64]*flight{},
		rwFlight:       map[uint64]*rewriteFlight{},
		stats:          map[Strategy]int64{},
		negMiss:        map[uint64]uint64{},
		mx:             wireMetrics(cfg.Metrics),
		admissionCost:  cfg.AdmissionCost,
		workload:       cfg.Workload,
		admissionPrice: price,
	}
}

// Evaluator exposes the underlying evaluator (for direct, registry-
// bypassing evaluation and for decoding results).
func (r *Registry) Evaluator() *core.Evaluator { return r.ev }

// Instance returns the AnS instance the registry answers over.
func (r *Registry) Instance() *store.Store { return r.st }

// SetLimits adjusts the byte/count budgets, evicting immediately if the
// new bounds are exceeded. Zero means unbounded.
func (r *Registry) SetLimits(maxEntries int, maxBytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maxEntries, r.maxBytes = maxEntries, maxBytes
	r.evictLocked()
}

// SetMaxEntries adjusts only the entry-count budget, leaving any byte
// budget in place.
func (r *Registry) SetMaxEntries(maxEntries int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.maxEntries == maxEntries {
		return
	}
	r.maxEntries = maxEntries
	r.evictLocked()
}

// Entries returns the number of registered materializations.
func (r *Registry) Entries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// Bytes returns the estimated byte footprint of registered views.
func (r *Registry) Bytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}

// Stats returns a snapshot of the registry counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	by := make(map[Strategy]int64, len(r.stats))
	for k, v := range r.stats {
		by[k] = v
	}
	return Stats{
		Entries:           r.lru.Len(),
		Bytes:             r.bytes,
		ByStrategy:        by,
		Evictions:         r.evictions,
		Invalidations:     r.invalids,
		Coalesced:         r.coalesced,
		CoalescedRewrites: r.coalescedRw,
		Maintained:        r.maintained,
		LazyUpgrades:      r.lazyUpgrades,
		NegSkips:          r.negSkips,
		Admitted:          r.admitted,
		Refused:           r.refused,
	}
}

// Answer answers q, choosing the cheapest applicable strategy. The
// returned cube has the canonical (dims..., measure) layout of
// Evaluator.Answer and must be treated as immutable when the strategy is
// StrategyCached (it aliases the registered view).
func (r *Registry) Answer(q *core.Query) (*algebra.Relation, Strategy, error) {
	return r.AnswerCtx(context.Background(), q)
}

// isCtxErr reports whether err is a context cancellation or deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// AnswerCtx is Answer honoring ctx. Cancellation aborts this caller's
// own evaluation and its waits on coalesced flights; a follower whose
// flight leader was cancelled (by the *leader's* context) re-evaluates
// privately rather than inheriting the leader's error. Registry
// maintenance (freshening stale views) deliberately stays off ctx: it
// serves every future caller, not just this one.
func (r *Registry) AnswerCtx(ctx context.Context, q *core.Query) (out *algebra.Relation, strat Strategy, rerr error) {
	if err := q.Validate(); err != nil {
		return nil, "", err
	}
	ctx, span := obs.StartSpan(ctx, "viewreg.answer")
	if span != nil {
		defer func() {
			if strat != "" {
				span.Attr("strategy", string(strat))
			}
			if out != nil {
				span.AddRows(int64(out.Len()))
			}
			span.End()
		}()
	}
	fam := familyKey(q)
	key := exactKey(fam, q)
	epoch := r.st.Epoch()
	ver := r.st.Version()

	// Phase 1: scan the family's registered views, newest first, for an
	// applicable rewriting, maintaining delta-stale candidates through
	// the store's feed first. The rewrite itself runs outside the lock on
	// the freshened pres/ans snapshots; a concurrent eviction of the
	// entry is harmless (our reference keeps the snapshots alive). The
	// negative cache short-circuits families already known not to match
	// at this exact version, and concurrent identical queries coalesce on
	// one scan: the leader computes the rewrite (one σ_dice, not N),
	// followers wait and share the cube.
	scanned := false
	if !r.negativeHit(key, epoch) {
		r.mu.Lock()
		if fl, ok := r.rwFlight[key]; ok && fl.epoch == epoch && sameAnswerShape(fl.query, q) {
			r.coalescedRw++
			r.mx.coalescedRw.Inc()
			fl.waiters++
			r.mu.Unlock()
			wait := span.NewChild("viewreg.flight.wait")
			wait.Attr("kind", "rewrite")
			select {
			case <-fl.done:
			case <-ctx.Done():
				wait.End()
				return nil, "", ctx.Err()
			}
			wait.End()
			if fl.cube != nil {
				r.bump(fl.strategy)
				// Each follower gets its own clone: the flight's copy is
				// mutated by nobody, so rewrite-strategy results keep the
				// documented caller-private semantics even when coalesced.
				return fl.cube.Clone(), fl.strategy, nil
			}
			// The leader found no rewrite at this version: fall through to
			// the direct phase without rescanning.
		} else {
			fl := &rewriteFlight{query: q.Clone(), epoch: epoch, done: make(chan struct{})}
			r.rwFlight[key] = fl
			r.mu.Unlock()
			scanned = true
			var (
				rwCube  *algebra.Relation
				rwStrat Strategy
				rwErr   error
			)
			scanSpan := span.NewChild("viewreg.rewrite.scan")
			cands := r.candidates(fam, ver)
			scanSpan.AttrInt("candidates", int64(len(cands)))
			scanCtx := obs.ContextWithSpan(ctx, scanSpan) // nests maintenance under the scan
			for _, e := range cands {
				pres, ans, ok := r.freshen(scanCtx, e, ver)
				if !ok {
					continue
				}
				rwStrat, rwCube, rwErr = r.tryRewrite(e.query, q, pres, ans)
				if rwErr != nil || rwCube != nil {
					if rwCube != nil {
						r.touch(e)
					}
					break
				}
			}
			scanSpan.End()
			r.mu.Lock()
			if r.rwFlight[key] == fl {
				delete(r.rwFlight, key)
			}
			waiters := fl.waiters // final: the flight is unpublished
			r.mu.Unlock()
			if rwErr == nil && rwCube != nil && waiters > 0 {
				// Publish a defensive copy: the leader's caller owns rwCube
				// (rewrite results are caller-private and may be mutated,
				// e.g. sorted in place); followers clone from this copy.
				// With nobody parked, the flight never leaves this scope
				// and the copy is skipped.
				fl.cube, fl.strategy = rwCube.Clone(), rwStrat
			}
			close(fl.done)
			if rwErr != nil {
				return nil, "", rwErr
			}
			if rwCube != nil {
				r.bump(rwStrat)
				return rwCube, rwStrat, nil
			}
		}
	}

	// Phase 2: no reuse possible — direct evaluation, collapsed with any
	// concurrent identical evaluation.
	r.mu.Lock()
	if scanned {
		r.recordMissLocked(key, epoch)
	}
	// Re-check the family under the lock: a leader finishing between our
	// phase-1 scan and here publishes its entry and removes its flight in
	// one lock hold, so an identical query must land on exactly one of
	// the two — without this, it would see neither and evaluate a second
	// time.
	bucket := r.families[fam]
	for i := len(bucket) - 1; i >= 0; i-- {
		if e := bucket[i]; e.ver == ver && sameAnswerShape(e.query, q) {
			if e.elem != nil {
				r.lru.MoveToFront(e.elem)
				e.hits++
			}
			r.stats[StrategyCached]++
			r.mx.answers[StrategyCached].Inc()
			cube := e.ans
			r.mu.Unlock()
			return cube, StrategyCached, nil
		}
	}
	if fl, ok := r.inflight[key]; ok && sameAnswerShape(fl.query, q) {
		r.coalesced++
		r.mx.coalesced.Inc()
		r.mu.Unlock()
		wait := span.NewChild("viewreg.flight.wait")
		wait.Attr("kind", "direct")
		select {
		case <-fl.done:
		case <-ctx.Done():
			wait.End()
			return nil, "", ctx.Err()
		}
		wait.End()
		if fl.err != nil {
			if isCtxErr(fl.err) && ctx.Err() == nil {
				// The leader's caller walked away mid-evaluation; this
				// follower is still live, so answer it with a private
				// (unregistered) evaluation under its own context.
				ev := r.ev.WithContext(ctx)
				pres, err := ev.Pres(q)
				if err != nil {
					return nil, "", err
				}
				cube, err := ev.AnswerFromPres(q, pres)
				if err != nil {
					return nil, "", err
				}
				r.bump(StrategyDirect)
				return cube, StrategyDirect, nil
			}
			return nil, "", fl.err
		}
		r.bump(StrategyCached)
		return fl.cube, StrategyCached, nil
	}
	// Become the leader. If a fingerprint collision maps an unrelated
	// query to the same key, the displaced flight still completes on its
	// own (the guarded delete below keeps the table consistent).
	fl := &flight{query: q.Clone(), done: make(chan struct{})}
	r.inflight[key] = fl
	r.mu.Unlock()

	// Evaluate plainly: registration deliberately does NOT build the
	// incremental materialization (internal/incr) up front — its key
	// indexes cost extra time and memory that a read-only entry never
	// recoups. The entry registers as upgradable instead, and freshen
	// builds the maintained form lazily on the first write that leaves
	// the entry behind.
	var (
		pres, cube *algebra.Relation
		err        error
	)
	evalStart := time.Now()
	evalCtx, evalSpan := obs.StartSpan(ctx, "viewreg.direct")
	ev := r.ev.WithContext(evalCtx)
	if pres, err = ev.Pres(q); err == nil {
		cube, err = ev.AnswerFromPres(q, pres)
	}
	evalSpan.End()
	evalNs := time.Since(evalStart).Nanoseconds()

	r.mu.Lock()
	if r.inflight[key] == fl {
		delete(r.inflight, key)
	}
	fl.cube, fl.err = cube, err
	if err == nil {
		r.stats[StrategyDirect]++
		r.mx.answers[StrategyDirect].Inc()
		// Register only if no write raced the evaluation: an epoch moved
		// past us means the cube may reflect superseded data.
		if r.st.Epoch() == epoch {
			e := &entry{
				fam:        fam,
				key:        key,
				query:      fl.query,
				upgradable: true,
				pres:       pres,
				ans:        cube,
				bytes:      relationBytes(pres) + relationBytes(cube) + entryOverhead,
				ver:        ver,
				costNs:     evalNs,
			}
			if r.admitLocked(key, e, evalNs) {
				r.insertLocked(e)
			}
		}
	}
	r.mu.Unlock()
	close(fl.done)
	if err != nil {
		return nil, "", err
	}
	return cube, StrategyDirect, nil
}

// NotifyWrite tells the registry the instance just changed. It sweeps a
// bounded batch of entries, most recently used first: views behind only
// on the delta sequence are maintained through the store's feed, views
// whose base epoch moved (or that cannot be maintained) are dropped
// eagerly — so the byte accounting in Stats stays honest between
// lookups instead of waiting for lookup-time pruning. Entries beyond the
// batch bound catch up lazily at their next lookup.
//
// Call it inside the same write critical section that mutated the store
// (the server does), so maintenance never races further writes.
func (r *Registry) NotifyWrite() { r.NotifyWriteCtx(context.Background()) }

// NotifyWriteCtx is NotifyWrite carrying a context, so maintenance
// triggered by a traced write shows up under the write's span tree (the
// context is trace propagation only — maintenance is not cancellable).
func (r *Registry) NotifyWriteCtx(ctx context.Context) {
	ver := r.st.Version()
	r.mu.Lock()
	var stale, behind []*entry
	n := 0
	for el := r.lru.Front(); el != nil && n < notifyBatch; el = el.Next() {
		e := el.Value.(*entry)
		n++
		if e.ver == ver {
			continue
		}
		if e.ver.Base != ver.Base || (e.mp == nil && !e.upgradable) {
			stale = append(stale, e)
		} else {
			behind = append(behind, e)
		}
	}
	for _, e := range stale {
		r.dropLocked(e)
		r.removeFromFamilyLocked(e)
		r.invalids++
		r.mx.invalids.Inc()
	}
	r.mu.Unlock()
	for _, e := range behind {
		r.freshen(ctx, e, ver)
	}
}

// candidates prunes the family's base-stale entries and returns the live
// ones, newest first. Entries behind only on the delta sequence survive
// — freshen catches them up.
func (r *Registry) candidates(fam uint64, ver store.Version) []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	bucket := r.families[fam]
	live := bucket[:0]
	for _, e := range bucket {
		if e.ver.Base != ver.Base || (e.ver != ver && e.mp == nil && !e.upgradable) {
			r.dropLocked(e)
			r.invalids++
			r.mx.invalids.Inc()
			continue
		}
		live = append(live, e)
	}
	if len(live) == 0 {
		delete(r.families, fam)
	} else {
		r.families[fam] = live
	}
	out := make([]*entry, len(live))
	for i, e := range live {
		out[len(live)-1-i] = e
	}
	return out
}

// freshen brings e up to the store version through the delta feed and
// returns consistent pres/ans snapshots. ok is false when the entry had
// to be dropped instead (maintenance unavailable or failed). The delta
// evaluation runs under the entry lock only; the final swap also holds
// the registry lock so snapshot readers see consistent fields. ctx is
// trace propagation only — maintenance is never cancelled (it serves
// every future caller, not just this one).
//
// An entry registered without the maintained form (mp nil, upgradable)
// upgrades here, on the first write that leaves it behind: the
// incremental materialization is built at the current version and
// swapped in, and later writes take the cheap delta path. A failed
// upgrade drops the entry, like failed maintenance.
func (r *Registry) freshen(ctx context.Context, e *entry, ver store.Version) (pres, ans *algebra.Relation, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ver == ver {
		return e.pres, e.ans, true
	}
	if e.ver.Base != ver.Base || (e.mp == nil && !e.upgradable) {
		r.discard(e)
		return nil, nil, false
	}
	start := time.Now()
	_, span := obs.StartSpan(ctx, "viewreg.maintain")
	defer func() {
		r.mx.maintainSec.Observe(time.Since(start).Nanoseconds())
		span.Attr("ok", fmt.Sprintf("%t", ok))
		span.End()
	}()
	upgraded := false
	if e.mp == nil {
		span.Attr("upgrade", "lazy")
		mp, err := incr.NewCtx(ctx, r.ev, e.query)
		if err != nil {
			e.upgradable = false
			r.discard(e)
			return nil, nil, false
		}
		e.mp, e.upgradable, upgraded = mp, false, true
	} else if _, _, refreshed, err := e.mp.Sync(); err != nil || refreshed {
		// refreshed means the base moved underneath us after the check
		// above — the entry's materialization was recomputed, which is
		// exactly the cost this registry avoids; treat it as stale.
		r.discard(e)
		return nil, nil, false
	}
	newPres := e.mp.Pres()
	newAns, err := e.mp.Answer()
	if err != nil {
		r.discard(e)
		return nil, nil, false
	}
	nb := relationBytes(newPres) + relationBytes(newAns) + entryOverhead
	r.mu.Lock()
	e.pres, e.ans, e.ver = newPres, newAns, ver
	if e.elem != nil {
		r.bytes += nb - e.bytes
	}
	e.bytes = nb
	r.maintained++
	r.mx.maintained.Inc()
	if upgraded {
		r.lazyUpgrades++
		r.mx.lazyUpgrades.Inc()
	}
	r.evictLocked()
	r.mu.Unlock()
	return newPres, newAns, true
}

// discard drops e from the registry (caller holds e.mu).
func (r *Registry) discard(e *entry) {
	r.mu.Lock()
	if e.elem != nil {
		r.dropLocked(e)
		r.removeFromFamilyLocked(e)
		r.invalids++
		r.mx.invalids.Inc()
	}
	r.mu.Unlock()
}

// negativeHit reports whether the negative cache remembers key missing
// at the given packed store version.
func (r *Registry) negativeHit(key uint64, epoch uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.negMiss[key]; ok && v == epoch {
		r.negSkips++
		r.mx.negSkips.Inc()
		return true
	}
	return false
}

// recordMissLocked remembers that key's family scan found no applicable
// rewrite at the given packed version. Caller holds r.mu.
func (r *Registry) recordMissLocked(key uint64, epoch uint64) {
	if len(r.negMiss) >= negMissCap {
		r.negMiss = map[uint64]uint64{}
	}
	r.negMiss[key] = epoch
}

// tryRewrite attempts to answer q from a registered query's materialized
// pres/ans snapshots. A nil cube with nil error means "not applicable".
// The semantics mirror the original session manager's detection exactly.
func (r *Registry) tryRewrite(eq *core.Query, q *core.Query, pres, ans *algebra.Relation) (Strategy, *algebra.Relation, error) {
	if !sameMeasure(eq, q) || eq.Agg.Name() != q.Agg.Name() {
		return "", nil, nil
	}
	if !sameBody(eq.Classifier, q.Classifier) {
		return "", nil, nil
	}
	switch headRelation(eq.Classifier.Head, q.Classifier.Head) {
	case headEqual:
		if sigmaEqual(eq.Sigma, q.Sigma) {
			return StrategyCached, ans, nil
		}
		if sigmaRefines(eq.Sigma, q.Sigma) {
			cube, err := r.ev.DiceRewrite(q, ans)
			if err != nil {
				return "", nil, err
			}
			return StrategyDice, cube, nil
		}
	case headSubset:
		// q drops dimensions from eq. Algorithm 1 applies when the
		// surviving dimensions carry identical restrictions and the
		// dropped dimensions were unrestricted in eq — DrillOut removes a
		// dropped dimension's Σ entry, so a restriction baked into
		// pres would over-filter q's answer.
		if !sigmaEqualOn(eq.Sigma, q.Sigma, q.Dims()) {
			return "", nil, nil
		}
		drop := missingDims(eq.Dims(), q.Dims())
		for _, d := range drop {
			if eq.Sigma.Restricts(d) {
				return "", nil, nil
			}
		}
		cube, err := r.ev.DrillOutRewrite(eq, pres, drop...)
		if err != nil {
			return "", nil, err
		}
		// Reorder to q's dimension order if needed.
		cols := append(append([]string(nil), q.Dims()...), q.MeasureVar())
		return StrategyDrillOut, cube.Project(cols...), nil
	case headSuperset:
		// q adds dimensions; Algorithm 2 handles one added existential
		// dimension per application. Apply iteratively for several.
		added := missingDims(q.Dims(), eq.Dims())
		if len(added) != 1 {
			return "", nil, nil // multi-dim drill-in: fall back to direct
		}
		if !sigmaEqualOn(eq.Sigma, q.Sigma, eq.Dims()) || q.Sigma.Restricts(added[0]) {
			return "", nil, nil
		}
		cube, err := r.ev.DrillInRewrite(eq, pres, added[0])
		if err != nil {
			// The added variable may not be existential in eq's
			// classifier; treat as not applicable.
			return "", nil, nil
		}
		cols := append(append([]string(nil), q.Dims()...), q.MeasureVar())
		return StrategyDrillIn, cube.Project(cols...), nil
	}
	return "", nil, nil
}

// touch marks e most recently used and counts the reuse, if it is
// still registered.
func (r *Registry) touch(e *entry) {
	r.mu.Lock()
	if e.elem != nil {
		r.lru.MoveToFront(e.elem)
		e.hits++
	}
	r.mu.Unlock()
}

// bump increments a strategy counter.
func (r *Registry) bump(s Strategy) {
	r.mu.Lock()
	r.stats[s]++
	r.mu.Unlock()
	r.mx.answers[s].Inc()
}

// admitLocked decides whether a freshly evaluated view earns its
// bytes. Admit-always mode says yes unconditionally (and counts
// nothing). Cost mode applies the paper's economics: the view is worth
// keeping when the evaluation cost it saves — measured evalNs times
// the shape's expected reuse, taken from the workload profiler's
// observed call count — meets the break-even price of its footprint.
// A shape's first-ever evaluation sees reuse 0 (the profiler records
// after answering) and is refused: views are admitted on the second
// touch, when the workload has proven repetition. Caller holds r.mu.
func (r *Registry) admitLocked(key uint64, e *entry, evalNs int64) bool {
	if !r.admissionCost {
		return true
	}
	var reuse int64
	if r.workload != nil {
		if calls, _, ok := r.workload.ShapeCost(key); ok {
			reuse = calls
		}
	}
	if float64(evalNs)*float64(reuse) >= float64(e.bytes)*r.admissionPrice {
		r.admitted++
		r.mx.admitted.Inc()
		return true
	}
	r.refused++
	r.mx.refused.Inc()
	return false
}

// insertLocked registers e and enforces the budgets. If the entry
// survives admission, the negative cache is invalidated — the candidate
// set grew, so previous misses may now rewrite; an entry evicted on
// arrival (oversized) cannot, and the recorded misses stay valid.
// Caller holds r.mu.
func (r *Registry) insertLocked(e *entry) {
	r.families[e.fam] = append(r.families[e.fam], e)
	e.elem = r.lru.PushFront(e)
	r.bytes += e.bytes
	r.evictLocked()
	if e.elem != nil && len(r.negMiss) > 0 {
		r.negMiss = map[uint64]uint64{}
	}
}

// evictLocked drops entries until the budgets hold. Admit-always mode
// evicts least-recently-used; cost mode evicts the lowest
// benefit-per-byte — measured rebuild cost × (hits+1) / bytes — so a
// cheap-to-rebuild, rarely-hit giant goes before a hot, expensive
// view, regardless of recency. The scan is O(entries) per eviction,
// bounded by the same budgets that triggered it.
func (r *Registry) evictLocked() {
	for r.lru.Len() > 0 &&
		((r.maxBytes > 0 && r.bytes > r.maxBytes) ||
			(r.maxEntries > 0 && r.lru.Len() > r.maxEntries)) {
		victim := r.lru.Back().Value.(*entry)
		if r.admissionCost && r.lru.Len() > 1 {
			best := benefitPerByte(victim)
			for el := r.lru.Back().Prev(); el != nil; el = el.Prev() {
				e := el.Value.(*entry)
				if s := benefitPerByte(e); s < best {
					best, victim = s, e
				}
			}
		}
		r.dropLocked(victim)
		r.removeFromFamilyLocked(victim)
		r.evictions++
		r.mx.evictions.Inc()
	}
}

// benefitPerByte scores an entry for cost-mode eviction: the
// evaluation nanoseconds retaining it saves per resident byte. hits+1
// counts the (certain) registration evaluation alongside observed
// reuses.
func benefitPerByte(e *entry) float64 {
	b := e.bytes
	if b < 1 {
		b = 1
	}
	return float64(e.costNs) * float64(e.hits+1) / float64(b)
}

// dropLocked unlinks e from the LRU list and the byte budget. The family
// bucket is cleaned separately (candidates prunes in place; evictLocked
// calls removeFromFamilyLocked).
func (r *Registry) dropLocked(e *entry) {
	if e.elem != nil {
		r.lru.Remove(e.elem)
		e.elem = nil
		r.bytes -= e.bytes
	}
}

func (r *Registry) removeFromFamilyLocked(e *entry) {
	bucket := r.families[e.fam]
	for i, cand := range bucket {
		if cand == e {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(r.families, e.fam)
	} else {
		r.families[e.fam] = bucket
	}
}

// Describe renders the registry contents for diagnostics, newest first.
func (r *Registry) Describe() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := fmt.Sprintf("%d materialized queries, ~%d bytes\n", r.lru.Len(), r.bytes)
	i := 0
	for el := r.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		s += fmt.Sprintf("  [%d] dims=%v agg=%s pres=%d rows ans=%d cells ver=%d.%d\n",
			i, e.query.Dims(), e.query.Agg.Name(), e.pres.Len(), e.ans.Len(), e.ver.Base, e.ver.Seq)
		i++
	}
	return s
}

// entryOverhead covers the entry struct, query clone and map slots on
// top of the relations' own footprint (algebra.Relation.EstimateBytes).
const entryOverhead = 256

// relationBytes estimates rel's resident size.
func relationBytes(rel *algebra.Relation) int64 { return rel.EstimateBytes() }
