// Package viewreg implements a concurrency-safe, cross-session registry
// of materialized analytical views — the paper's problem statement
// (Figure 2) lifted from a single interactive session to a shared
// server: the pres(Q)/ans(Q) of every directly-evaluated query are
// registered under canonicalized fingerprints, and *any* client's
// SLICE/DICE/DRILL-OUT/DRILL-IN can then be answered from *another*
// client's materialized results via the syntactic rewriting detection:
//
//   - identical query          → the registered ans(Q) ("cached");
//   - SLICE/DICE refinement    → σ_dice over ans(Q) (Proposition 1);
//   - DRILL-OUT                → Algorithm 1 over pres(Q) (Proposition 2);
//   - DRILL-IN                 → Algorithm 2 over pres(Q) + q_aux
//     (Proposition 3);
//   - otherwise                → direct evaluation, after which the new
//     query's results are registered for future reuse.
//
// Three properties make the registry serve concurrent traffic:
//
//   - Single-flight direct evaluation: concurrent clients asking the
//     same cube (by canonical fingerprint) trigger exactly one direct
//     evaluation; followers block until the leader publishes and then
//     reuse its result.
//   - Cost-aware bounded memory: entries are LRU-evicted by estimated
//     byte footprint (and optionally by count), not entry count alone,
//     so one huge pres(Q) cannot silently pin the budget.
//   - Write invalidation: every entry is tagged with the store's
//     freeze-epoch at evaluation time; any store write advances the
//     epoch and stale entries are dropped at next lookup, so the
//     registry never serves a cube computed from superseded data.
//
// Registered relations are immutable by convention: rewrites read them
// concurrently without locks, and callers must not mutate a returned
// cube that came from the registry (clone before sorting in place).
package viewreg

import (
	"container/list"
	"fmt"
	"sync"

	"rdfcube/internal/algebra"
	"rdfcube/internal/core"
	"rdfcube/internal/store"
)

// Strategy identifies how a query was answered.
type Strategy string

// The five answering strategies, in preference order.
const (
	StrategyCached   Strategy = "cached"
	StrategyDice     Strategy = "dice-rewrite"
	StrategyDrillOut Strategy = "drillout-rewrite"
	StrategyDrillIn  Strategy = "drillin-rewrite"
	StrategyDirect   Strategy = "direct"
)

// Strategies lists every strategy, for stats iteration.
var Strategies = []Strategy{
	StrategyCached, StrategyDice, StrategyDrillOut, StrategyDrillIn, StrategyDirect,
}

// Config bounds a registry. Zero values mean unbounded.
type Config struct {
	// MaxBytes caps the estimated byte footprint of registered views;
	// least-recently-used entries are evicted past it. An entry larger
	// than the whole budget is not retained at all.
	MaxBytes int64
	// MaxEntries additionally caps the entry count (the legacy
	// session-manager bound).
	MaxEntries int
}

// entry is one registered materialization.
type entry struct {
	fam, key uint64
	query    *core.Query
	pres     *algebra.Relation
	ans      *algebra.Relation
	bytes    int64
	epoch    uint64
	elem     *list.Element // position in the LRU list; nil once removed
}

// flight is one in-progress direct evaluation that followers wait on.
type flight struct {
	query *core.Query
	done  chan struct{}
	cube  *algebra.Relation
	err   error
}

// Stats is a point-in-time snapshot of registry counters.
type Stats struct {
	// Entries and Bytes describe the current contents.
	Entries int
	Bytes   int64
	// ByStrategy counts answered queries per strategy.
	ByStrategy map[Strategy]int64
	// Evictions counts entries dropped for the byte/count budget;
	// Invalidations counts entries dropped because the store's epoch
	// moved past them; Coalesced counts queries that piggybacked on
	// another client's in-flight direct evaluation.
	Evictions     int64
	Invalidations int64
	Coalesced     int64
}

// Registry is a shared materialized-view registry over one AnS instance.
// All methods are safe for concurrent use; store *writes* must still be
// serialized against Answer calls by the caller (the server holds an
// RWMutex), after which epoch validation retires outdated entries.
type Registry struct {
	ev *core.Evaluator
	st *store.Store

	mu         sync.Mutex
	maxBytes   int64
	maxEntries int
	families   map[uint64][]*entry // per family, oldest first
	lru        *list.List          // *entry; front = most recently used
	bytes      int64
	inflight   map[uint64]*flight
	stats      map[Strategy]int64
	evictions  int64
	invalids   int64
	coalesced  int64
}

// New returns an empty registry over the given AnS instance.
func New(inst *store.Store, cfg Config) *Registry {
	return &Registry{
		ev:         core.NewEvaluator(inst),
		st:         inst,
		maxBytes:   cfg.MaxBytes,
		maxEntries: cfg.MaxEntries,
		families:   map[uint64][]*entry{},
		lru:        list.New(),
		inflight:   map[uint64]*flight{},
		stats:      map[Strategy]int64{},
	}
}

// Evaluator exposes the underlying evaluator (for direct, registry-
// bypassing evaluation and for decoding results).
func (r *Registry) Evaluator() *core.Evaluator { return r.ev }

// Instance returns the AnS instance the registry answers over.
func (r *Registry) Instance() *store.Store { return r.st }

// SetLimits adjusts the byte/count budgets, evicting immediately if the
// new bounds are exceeded. Zero means unbounded.
func (r *Registry) SetLimits(maxEntries int, maxBytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maxEntries, r.maxBytes = maxEntries, maxBytes
	r.evictLocked()
}

// SetMaxEntries adjusts only the entry-count budget, leaving any byte
// budget in place.
func (r *Registry) SetMaxEntries(maxEntries int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.maxEntries == maxEntries {
		return
	}
	r.maxEntries = maxEntries
	r.evictLocked()
}

// Entries returns the number of registered materializations.
func (r *Registry) Entries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// Bytes returns the estimated byte footprint of registered views.
func (r *Registry) Bytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}

// Stats returns a snapshot of the registry counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	by := make(map[Strategy]int64, len(r.stats))
	for k, v := range r.stats {
		by[k] = v
	}
	return Stats{
		Entries:       r.lru.Len(),
		Bytes:         r.bytes,
		ByStrategy:    by,
		Evictions:     r.evictions,
		Invalidations: r.invalids,
		Coalesced:     r.coalesced,
	}
}

// Answer answers q, choosing the cheapest applicable strategy. The
// returned cube has the canonical (dims..., measure) layout of
// Evaluator.Answer and must be treated as immutable when the strategy is
// StrategyCached (it aliases the registered view).
func (r *Registry) Answer(q *core.Query) (*algebra.Relation, Strategy, error) {
	if err := q.Validate(); err != nil {
		return nil, "", err
	}
	fam := familyKey(q)
	key := exactKey(fam, q)
	epoch := r.st.Epoch()

	// Phase 1: scan the family's registered views, newest first, for an
	// applicable rewriting. Entries are immutable, so the rewrite itself
	// runs outside the lock; a concurrent eviction of the entry is
	// harmless (our reference keeps it alive).
	for _, e := range r.candidates(fam, epoch) {
		strategy, cube, err := r.tryRewrite(e, q)
		if err != nil {
			return nil, "", err
		}
		if cube != nil {
			r.touch(e)
			r.bump(strategy)
			return cube, strategy, nil
		}
	}

	// Phase 2: no reuse possible — direct evaluation, collapsed with any
	// concurrent identical evaluation.
	r.mu.Lock()
	// Re-check the family under the lock: a leader finishing between our
	// phase-1 scan and here publishes its entry and removes its flight in
	// one lock hold, so an identical query must land on exactly one of
	// the two — without this, it would see neither and evaluate a second
	// time.
	bucket := r.families[fam]
	for i := len(bucket) - 1; i >= 0; i-- {
		if e := bucket[i]; e.epoch == epoch && sameAnswerShape(e.query, q) {
			if e.elem != nil {
				r.lru.MoveToFront(e.elem)
			}
			r.stats[StrategyCached]++
			cube := e.ans
			r.mu.Unlock()
			return cube, StrategyCached, nil
		}
	}
	if fl, ok := r.inflight[key]; ok && sameAnswerShape(fl.query, q) {
		r.coalesced++
		r.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, "", fl.err
		}
		r.bump(StrategyCached)
		return fl.cube, StrategyCached, nil
	}
	// Become the leader. If a fingerprint collision maps an unrelated
	// query to the same key, the displaced flight still completes on its
	// own (the guarded delete below keeps the table consistent).
	fl := &flight{query: q.Clone(), done: make(chan struct{})}
	r.inflight[key] = fl
	r.mu.Unlock()

	pres, err := r.ev.Pres(q)
	var cube *algebra.Relation
	if err == nil {
		cube, err = r.ev.AnswerFromPres(q, pres)
	}

	r.mu.Lock()
	if r.inflight[key] == fl {
		delete(r.inflight, key)
	}
	fl.cube, fl.err = cube, err
	if err == nil {
		r.stats[StrategyDirect]++
		// Register only if no write raced the evaluation: an epoch moved
		// past us means the cube may reflect superseded data.
		if r.st.Epoch() == epoch {
			r.insertLocked(&entry{
				fam:   fam,
				key:   key,
				query: fl.query,
				pres:  pres,
				ans:   cube,
				bytes: relationBytes(pres) + relationBytes(cube) + entryOverhead,
				epoch: epoch,
			})
		}
	}
	r.mu.Unlock()
	close(fl.done)
	if err != nil {
		return nil, "", err
	}
	return cube, StrategyDirect, nil
}

// candidates prunes the family's stale entries and returns the live
// ones, newest first.
func (r *Registry) candidates(fam uint64, epoch uint64) []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	bucket := r.families[fam]
	live := bucket[:0]
	for _, e := range bucket {
		if e.epoch != epoch {
			r.dropLocked(e)
			r.invalids++
			continue
		}
		live = append(live, e)
	}
	if len(live) == 0 {
		delete(r.families, fam)
	} else {
		r.families[fam] = live
	}
	out := make([]*entry, len(live))
	for i, e := range live {
		out[len(live)-1-i] = e
	}
	return out
}

// tryRewrite attempts to answer q from entry e. A nil cube with nil
// error means "not applicable". The semantics mirror the original
// session manager's detection exactly.
func (r *Registry) tryRewrite(e *entry, q *core.Query) (Strategy, *algebra.Relation, error) {
	if !sameMeasure(e.query, q) || e.query.Agg.Name() != q.Agg.Name() {
		return "", nil, nil
	}
	if !sameBody(e.query.Classifier, q.Classifier) {
		return "", nil, nil
	}
	switch headRelation(e.query.Classifier.Head, q.Classifier.Head) {
	case headEqual:
		if sigmaEqual(e.query.Sigma, q.Sigma) {
			return StrategyCached, e.ans, nil
		}
		if sigmaRefines(e.query.Sigma, q.Sigma) {
			cube, err := r.ev.DiceRewrite(q, e.ans)
			if err != nil {
				return "", nil, err
			}
			return StrategyDice, cube, nil
		}
	case headSubset:
		// q drops dimensions from e. Algorithm 1 applies when the
		// surviving dimensions carry identical restrictions and the
		// dropped dimensions were unrestricted in e — DrillOut removes a
		// dropped dimension's Σ entry, so a restriction baked into
		// e.pres would over-filter q's answer.
		if !sigmaEqualOn(e.query.Sigma, q.Sigma, q.Dims()) {
			return "", nil, nil
		}
		drop := missingDims(e.query.Dims(), q.Dims())
		for _, d := range drop {
			if e.query.Sigma.Restricts(d) {
				return "", nil, nil
			}
		}
		cube, err := r.ev.DrillOutRewrite(e.query, e.pres, drop...)
		if err != nil {
			return "", nil, err
		}
		// Reorder to q's dimension order if needed.
		cols := append(append([]string(nil), q.Dims()...), q.MeasureVar())
		return StrategyDrillOut, cube.Project(cols...), nil
	case headSuperset:
		// q adds dimensions; Algorithm 2 handles one added existential
		// dimension per application. Apply iteratively for several.
		added := missingDims(q.Dims(), e.query.Dims())
		if len(added) != 1 {
			return "", nil, nil // multi-dim drill-in: fall back to direct
		}
		if !sigmaEqualOn(e.query.Sigma, q.Sigma, e.query.Dims()) || q.Sigma.Restricts(added[0]) {
			return "", nil, nil
		}
		cube, err := r.ev.DrillInRewrite(e.query, e.pres, added[0])
		if err != nil {
			// The added variable may not be existential in e's
			// classifier; treat as not applicable.
			return "", nil, nil
		}
		cols := append(append([]string(nil), q.Dims()...), q.MeasureVar())
		return StrategyDrillIn, cube.Project(cols...), nil
	}
	return "", nil, nil
}

// touch marks e most recently used, if it is still registered.
func (r *Registry) touch(e *entry) {
	r.mu.Lock()
	if e.elem != nil {
		r.lru.MoveToFront(e.elem)
	}
	r.mu.Unlock()
}

// bump increments a strategy counter.
func (r *Registry) bump(s Strategy) {
	r.mu.Lock()
	r.stats[s]++
	r.mu.Unlock()
}

// insertLocked registers e and enforces the budgets. Caller holds r.mu.
func (r *Registry) insertLocked(e *entry) {
	r.families[e.fam] = append(r.families[e.fam], e)
	e.elem = r.lru.PushFront(e)
	r.bytes += e.bytes
	r.evictLocked()
}

// evictLocked drops least-recently-used entries until the budgets hold.
func (r *Registry) evictLocked() {
	for r.lru.Len() > 0 &&
		((r.maxBytes > 0 && r.bytes > r.maxBytes) ||
			(r.maxEntries > 0 && r.lru.Len() > r.maxEntries)) {
		oldest := r.lru.Back().Value.(*entry)
		r.dropLocked(oldest)
		r.removeFromFamilyLocked(oldest)
		r.evictions++
	}
}

// dropLocked unlinks e from the LRU list and the byte budget. The family
// bucket is cleaned separately (candidates prunes in place; evictLocked
// calls removeFromFamilyLocked).
func (r *Registry) dropLocked(e *entry) {
	if e.elem != nil {
		r.lru.Remove(e.elem)
		e.elem = nil
		r.bytes -= e.bytes
	}
}

func (r *Registry) removeFromFamilyLocked(e *entry) {
	bucket := r.families[e.fam]
	for i, cand := range bucket {
		if cand == e {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(r.families, e.fam)
	} else {
		r.families[e.fam] = bucket
	}
}

// Describe renders the registry contents for diagnostics, newest first.
func (r *Registry) Describe() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := fmt.Sprintf("%d materialized queries, ~%d bytes\n", r.lru.Len(), r.bytes)
	i := 0
	for el := r.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		s += fmt.Sprintf("  [%d] dims=%v agg=%s pres=%d rows ans=%d cells epoch=%d\n",
			i, e.query.Dims(), e.query.Agg.Name(), e.pres.Len(), e.ans.Len(), e.epoch)
		i++
	}
	return s
}

// Byte-footprint estimation for the cost-aware budget. Cells dominate;
// the model charges the Value array, the per-row slice header, and the
// column names, deliberately ignoring allocator slack.
const (
	valueBytes    = 32  // unsafe.Sizeof(algebra.Value{}) on 64-bit
	rowOverhead   = 24  // slice header per row
	relOverhead   = 64  // Relation struct + slice headers
	entryOverhead = 256 // entry struct, query clone, map slots
)

// relationBytes estimates rel's resident size.
func relationBytes(rel *algebra.Relation) int64 {
	if rel == nil {
		return 0
	}
	b := int64(relOverhead)
	for _, c := range rel.Cols {
		b += int64(16 + len(c))
	}
	b += int64(len(rel.Rows)) * (rowOverhead + int64(len(rel.Cols))*valueBytes)
	return b
}
