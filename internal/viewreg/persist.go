package viewreg

// View-registry snapshots: the warm-start half of the durability story.
//
// Save serializes every registered view in one of two forms. A view
// that was upgraded to the maintained form carries the full incr
// maintenance state (classifier result, keyed measure, m̄ dedup keys,
// newk counter, pres(Q)) plus the aggregated ans(Q); a still-plain
// (lazily upgradable) view carries just its pres(Q) and ans(Q)
// snapshots and re-admits as upgradable — the restart preserves the
// registry's lazy-upgrade economics instead of forcing the costlier
// form on every entry. Each entry is tagged with the (baseEpoch,
// deltaSeq) store version it reflects. Restore re-admits entries
// against a store recovered to the same base epoch: a view saved at the
// exact current version comes back verbatim; a maintained view saved at
// an older delta sequence is Sync'd through the store's delta feed to
// catch up, while a plain one re-admits behind and upgrades lazily at
// its first use. Either way the server answers the warmed queries from
// materialized views after a restart without a single direct
// evaluation of the current entries.
//
// Term IDs inside the serialized relations are dictionary IDs of the
// instance the registry answers over. They are only meaningful against a
// store whose dictionary assigns identically — which is exactly what
// snapshot + WAL recovery reproduces. Restore guards this with the
// recorded base epoch and dictionary size and skips (never mis-admits)
// entries that do not line up.
//
// File layout (section framing and codecs in internal/persist):
//
//	magic "RDCV" | version 2
//	section META     store (base, seq), dictionary length, entry count
//	section ENTRIES  entries, oldest first (re-admission preserves LRU order)
//
// Version 2 prefixes every entry with a kind byte: 1 = maintained
// (incr state + ans), 0 = plain (pres + ans, upgradable). Version-1
// files (all entries maintained, no kind byte) still restore.

import (
	"fmt"
	"io"

	"rdfcube/internal/agg"
	"rdfcube/internal/algebra"
	"rdfcube/internal/core"
	"rdfcube/internal/dict"
	"rdfcube/internal/incr"
	"rdfcube/internal/persist"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

const (
	viewsMagic   = "RDCV"
	viewsVersion = 2

	viewsSecMeta    uint8 = 1
	viewsSecEntries uint8 = 2

	entryKindPlain      byte = 0
	entryKindMaintained byte = 1
)

// Save writes a snapshot of the registry's persistable views to w and
// returns how many it captured. Maintained entries serialize their incr
// state; plain upgradable entries serialize their pres/ans snapshots.
// Entries that failed their upgrade (neither maintained nor upgradable)
// are skipped — they could not catch up with a store that has moved, so
// persisting them would promise more than a restart can deliver.
func (r *Registry) Save(w io.Writer) (int, error) {
	r.mu.Lock()
	entries := make([]*entry, 0, r.lru.Len())
	for el := r.lru.Back(); el != nil; el = el.Prev() { // oldest first
		e := el.Value.(*entry)
		if e.mp != nil || e.upgradable {
			entries = append(entries, e)
		}
	}
	ver := r.st.Version()
	dictLen := r.st.Dict().Len()
	r.mu.Unlock()

	var ee persist.Enc
	saved := 0
	for _, e := range entries {
		e.mu.Lock()
		if e.mp == nil {
			ee.Byte(entryKindPlain)
			encodeQuery(&ee, e.query)
			ee.Uvarint(e.ver.Base)
			ee.Uvarint(e.ver.Seq)
			encodeRelation(&ee, e.pres)
			encodeRelation(&ee, e.ans)
			e.mu.Unlock()
			saved++
			continue
		}
		st, err := e.mp.State()
		if err != nil {
			e.mu.Unlock()
			continue // dirty mid-maintenance state is not resumable
		}
		ee.Byte(entryKindMaintained)
		encodeQuery(&ee, e.query)
		ee.Uvarint(st.Ver.Base)
		ee.Uvarint(st.Ver.Seq)
		encodeRelation(&ee, st.C)
		encodeRelation(&ee, st.Mk)
		encodeRelation(&ee, st.Pres)
		ee.Uvarint(uint64(len(st.MbarKeys)))
		for _, k := range st.MbarKeys {
			ee.String(k)
		}
		ee.Uvarint(st.NextKey)
		encodeRelation(&ee, e.ans)
		e.mu.Unlock()
		saved++
	}

	var me persist.Enc
	me.Uvarint(ver.Base)
	me.Uvarint(ver.Seq)
	me.Uvarint(uint64(dictLen))
	me.Uvarint(uint64(saved))

	fw := persist.NewFileWriter(viewsMagic, viewsVersion)
	fw.Section(viewsSecMeta, me.Bytes())
	fw.Section(viewsSecEntries, ee.Bytes())
	return saved, fw.Write(w)
}

// Restore re-admits the views of a snapshot written by Save against the
// registry's (recovered) instance. Views whose base epoch does not match
// the store's — or that fail any structural check — are skipped, not
// errors; views behind on the delta sequence are caught up through the
// store's feed. It returns the number of views admitted. Restore must
// not run concurrently with writes to the instance (call it during
// startup, before serving).
func (r *Registry) Restore(rd io.Reader) (int, error) {
	f, err := persist.ReadFile(rd, viewsMagic)
	if err != nil {
		return 0, err
	}
	if f.Version != 1 && f.Version != viewsVersion {
		return 0, fmt.Errorf("%w: unsupported view snapshot version %d", persist.ErrCorrupt, f.Version)
	}
	meta, err := f.Section(viewsSecMeta)
	if err != nil {
		return 0, err
	}
	savedBase := meta.Uvarint()
	_ = meta.Uvarint() // saved delta seq (informational)
	savedDictLen := meta.Uvarint()
	count := int(meta.Uvarint())
	if err := meta.Err(); err != nil {
		return 0, err
	}

	cur := r.st.Version()
	if savedBase != cur.Base || savedDictLen > uint64(r.st.Dict().Len()) {
		// A different store (or one recovered short of the snapshot):
		// term IDs would be meaningless. Nothing to warm.
		return 0, nil
	}

	ents, err := f.Section(viewsSecEntries)
	if err != nil {
		return 0, err
	}
	restored := 0
	for i := 0; i < count; i++ {
		kind := entryKindMaintained // version-1 files carry no kind byte
		if f.Version >= 2 {
			kind = ents.Byte()
		}
		if kind == entryKindPlain {
			q, ever, pres, ans, err := decodePlainEntry(ents)
			if err != nil {
				return restored, err
			}
			if ever.Base != cur.Base || ever.Seq > cur.Seq {
				continue // saved against a feed this store cannot replay
			}
			// Re-admit as a plain upgradable entry, possibly behind on the
			// delta sequence: the first use that needs it current performs
			// the lazy upgrade, exactly as if the entry had never left.
			fam := familyKey(q)
			e := &entry{
				fam:        fam,
				key:        exactKey(fam, q),
				query:      q,
				upgradable: true,
				pres:       pres,
				ans:        ans,
				ver:        ever,
			}
			e.bytes = relationBytes(e.pres) + relationBytes(e.ans) + entryOverhead
			// The snapshot carries no measured cost; score restored
			// entries at break-even (~1 eval-ns per byte) so cost-mode
			// eviction neither pins nor summarily dumps them.
			e.costNs = e.bytes
			r.mu.Lock()
			r.insertLocked(e)
			admitted := e.elem != nil
			r.mu.Unlock()
			if admitted {
				restored++
			}
			continue
		}
		q, st, ans, err := decodeEntry(ents)
		if err != nil {
			return restored, err
		}
		if st.Ver.Base != cur.Base || st.Ver.Seq > cur.Seq {
			continue // saved against a feed this store cannot replay
		}
		mp, err := incr.FromState(r.ev, q, st)
		if err != nil {
			continue
		}
		if st.Ver != cur {
			// Catch up through the delta feed. A refresh means the base
			// moved underneath (should not happen during startup) — the
			// entry would have cost a recomputation, so drop it.
			if _, _, refreshed, err := mp.Sync(); err != nil || refreshed {
				continue
			}
			if ans, err = mp.Answer(); err != nil {
				continue
			}
		}
		fam := familyKey(q)
		e := &entry{
			fam:   fam,
			key:   exactKey(fam, q),
			query: mp.Query(),
			mp:    mp,
			pres:  mp.Pres(),
			ans:   ans,
			ver:   cur,
		}
		e.bytes = relationBytes(e.pres) + relationBytes(e.ans) + entryOverhead
		e.costNs = e.bytes // break-even score; see above
		r.mu.Lock()
		r.insertLocked(e)
		admitted := e.elem != nil
		r.mu.Unlock()
		if admitted {
			restored++
		}
	}
	if err := ents.Err(); err != nil {
		return restored, err
	}
	return restored, nil
}

// encodeQuery serializes a core.Query: both BGPs, the aggregation name
// and Σ.
func encodeQuery(e *persist.Enc, q *core.Query) {
	encodeBGP(e, q.Classifier)
	encodeBGP(e, q.Measure)
	e.String(q.Agg.Name())
	e.Uvarint(uint64(len(q.Sigma)))
	for dim, vals := range q.Sigma {
		e.String(dim)
		e.Uvarint(uint64(len(vals)))
		for _, t := range vals {
			e.Term(t)
		}
	}
}

func encodeBGP(e *persist.Enc, q *sparql.Query) {
	e.String(q.Name)
	e.Uvarint(uint64(len(q.Head)))
	for _, v := range q.Head {
		e.String(v)
	}
	e.Uvarint(uint64(len(q.Patterns)))
	for _, tp := range q.Patterns {
		encodeNode(e, tp.S)
		encodeNode(e, tp.P)
		encodeNode(e, tp.O)
	}
}

func encodeNode(e *persist.Enc, n sparql.Node) {
	if n.IsVar() {
		e.Byte(1)
		e.String(n.Var)
	} else {
		e.Byte(0)
		e.Term(n.Term)
	}
}

// encodeRelation serializes a relation: columns, then rows as typed
// cells.
func encodeRelation(e *persist.Enc, rel *algebra.Relation) {
	e.Uvarint(uint64(len(rel.Cols)))
	for _, c := range rel.Cols {
		e.String(c)
	}
	e.Uvarint(uint64(len(rel.Rows)))
	for _, row := range rel.Rows {
		for _, v := range row {
			e.Byte(byte(v.Kind))
			switch v.Kind {
			case algebra.TermValue:
				e.Uvarint(uint64(v.ID))
			case algebra.NumValue:
				e.Float64(v.Num)
			case algebra.KeyValue:
				e.Uvarint(v.Key)
			}
		}
	}
}

func decodeEntry(d *persist.Dec) (*core.Query, *incr.State, *algebra.Relation, error) {
	q, err := decodeQuery(d)
	if err != nil {
		return nil, nil, nil, err
	}
	st := &incr.State{}
	st.Ver = store.Version{Base: d.Uvarint(), Seq: d.Uvarint()}
	if st.C, err = decodeRelation(d); err != nil {
		return nil, nil, nil, err
	}
	if st.Mk, err = decodeRelation(d); err != nil {
		return nil, nil, nil, err
	}
	if st.Pres, err = decodeRelation(d); err != nil {
		return nil, nil, nil, err
	}
	nKeys := d.Count(1)
	st.MbarKeys = make([]string, 0, nKeys)
	for i := 0; i < nKeys; i++ {
		st.MbarKeys = append(st.MbarKeys, d.String())
	}
	st.NextKey = d.Uvarint()
	ans, err := decodeRelation(d)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := d.Err(); err != nil {
		return nil, nil, nil, err
	}
	return q, st, ans, nil
}

// decodePlainEntry decodes a kind-0 (plain, upgradable) entry: query,
// reflected store version, pres(Q), ans(Q).
func decodePlainEntry(d *persist.Dec) (*core.Query, store.Version, *algebra.Relation, *algebra.Relation, error) {
	q, err := decodeQuery(d)
	if err != nil {
		return nil, store.Version{}, nil, nil, err
	}
	ver := store.Version{Base: d.Uvarint(), Seq: d.Uvarint()}
	pres, err := decodeRelation(d)
	if err != nil {
		return nil, store.Version{}, nil, nil, err
	}
	ans, err := decodeRelation(d)
	if err != nil {
		return nil, store.Version{}, nil, nil, err
	}
	if err := d.Err(); err != nil {
		return nil, store.Version{}, nil, nil, err
	}
	return q, ver, pres, ans, nil
}

func decodeQuery(d *persist.Dec) (*core.Query, error) {
	classifier, err := decodeBGP(d)
	if err != nil {
		return nil, err
	}
	measure, err := decodeBGP(d)
	if err != nil {
		return nil, err
	}
	f, err := agg.ByName(d.String())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", persist.ErrCorrupt, err)
	}
	q := &core.Query{Classifier: classifier, Measure: measure, Agg: f}
	nSigma := d.Count(2)
	if nSigma > 0 {
		q.Sigma = make(core.Sigma, nSigma)
		for i := 0; i < nSigma; i++ {
			dim := d.String()
			nVals := d.Count(2)
			vals := make([]rdf.Term, 0, nVals)
			for j := 0; j < nVals; j++ {
				vals = append(vals, d.Term())
			}
			q.Sigma[dim] = vals
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", persist.ErrCorrupt, err)
	}
	return q, nil
}

func decodeBGP(d *persist.Dec) (*sparql.Query, error) {
	q := &sparql.Query{Name: d.String()}
	nHead := d.Count(1)
	for i := 0; i < nHead; i++ {
		q.Head = append(q.Head, d.String())
	}
	nPat := d.Count(6)
	for i := 0; i < nPat; i++ {
		var tp sparql.TriplePattern
		var err error
		if tp.S, err = decodeNode(d); err != nil {
			return nil, err
		}
		if tp.P, err = decodeNode(d); err != nil {
			return nil, err
		}
		if tp.O, err = decodeNode(d); err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, tp)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return q, nil
}

func decodeNode(d *persist.Dec) (sparql.Node, error) {
	switch d.Byte() {
	case 1:
		v := d.String()
		if d.Err() != nil {
			return sparql.Node{}, d.Err()
		}
		if v == "" {
			return sparql.Node{}, fmt.Errorf("%w: empty variable name", persist.ErrCorrupt)
		}
		return sparql.V(v), nil
	case 0:
		t := d.Term()
		if d.Err() != nil {
			return sparql.Node{}, d.Err()
		}
		return sparql.C(t), nil
	default:
		if d.Err() != nil {
			return sparql.Node{}, d.Err()
		}
		return sparql.Node{}, fmt.Errorf("%w: bad node tag", persist.ErrCorrupt)
	}
}

// decodeRelation mirrors encodeRelation, validating cell kinds and row
// geometry so corrupt files fail closed.
func decodeRelation(d *persist.Dec) (*algebra.Relation, error) {
	nCols := d.Count(1)
	cols := make([]string, 0, nCols)
	for i := 0; i < nCols; i++ {
		cols = append(cols, d.String())
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	elem := nCols
	if elem < 1 {
		elem = 1
	}
	nRows := d.Count(elem)
	rel := &algebra.Relation{Cols: cols}
	rel.Rows = make([]algebra.Row, 0, nRows)
	cells := make([]algebra.Value, nRows*nCols)
	for i := 0; i < nRows; i++ {
		row := cells[i*nCols : (i+1)*nCols : (i+1)*nCols]
		for j := 0; j < nCols; j++ {
			kind := algebra.ValueKind(d.Byte())
			switch kind {
			case algebra.TermValue:
				row[j] = algebra.TermV(dict.ID(d.Uvarint()))
			case algebra.NumValue:
				row[j] = algebra.NumV(d.Float64())
			case algebra.KeyValue:
				row[j] = algebra.KeyV(d.Uvarint())
			default:
				if err := d.Err(); err != nil {
					return nil, err
				}
				return nil, fmt.Errorf("%w: bad cell kind %d", persist.ErrCorrupt, kind)
			}
		}
		rel.Rows = append(rel.Rows, row)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return rel, nil
}
