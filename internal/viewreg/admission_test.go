package viewreg

// Decision-table tests for cost-based admission and benefit-per-byte
// eviction (Config.AdmissionCost): the registry admits a directly
// evaluated view only when measured evaluation cost × expected reuse
// (the workload profiler's observed call count for the shape) meets
// the byte footprint, and evicts by lowest costNs×(hits+1)/bytes
// instead of raw LRU.

import (
	"testing"

	"rdfcube/internal/agg"
)

// fakeWorkload is a canned WorkloadStats.
type fakeWorkload map[uint64]int64

func (f fakeWorkload) ShapeCost(fp uint64) (calls, totalWallNs int64, ok bool) {
	c, ok := f[fp]
	return c, c * 1000, ok
}

// TestAdmissionDecisionTable drives admitLocked through the decision
// matrix with controlled numbers.
func TestAdmissionDecisionTable(t *testing.T) {
	const fp = uint64(42)
	cases := []struct {
		name      string
		calls     int64 // prior observed calls; -1 = shape unseen
		evalNs    int64
		bytes     int64
		threshold float64
		admit     bool
	}{
		{"never-seen shape refused however cheap", -1, 1 << 40, 100, 1, false},
		{"first call sees reuse 0 and is refused", 0, 1 << 40, 100, 1, false},
		{"repeated cheap view admitted", 1, 100_000, 10_240, 1, true},
		{"one-off expensive view refused", 1, 10_000_000, 50 << 20, 1, false},
		{"heavy reuse rescues a big view", 100, 10_000_000, 50 << 20, 1, true},
		{"threshold doubles the price: break-even refused", 1, 10_240, 10_240, 2, false},
		{"threshold doubles the price: 2x cost admitted", 1, 20_480, 10_240, 2, true},
		{"exact break-even admitted at default price", 1, 10_240, 10_240, 0, true},
	}
	for _, c := range cases {
		wl := fakeWorkload{}
		if c.calls >= 0 {
			wl[fp] = c.calls
		}
		r := New(instance(1, 10), Config{
			AdmissionCost:      true,
			Workload:           wl,
			AdmissionThreshold: c.threshold,
		})
		e := &entry{bytes: c.bytes}
		r.mu.Lock()
		got := r.admitLocked(fp, e, c.evalNs)
		r.mu.Unlock()
		if got != c.admit {
			t.Errorf("%s: admit = %v, want %v", c.name, got, c.admit)
		}
		st := r.Stats()
		if c.admit && (st.Admitted != 1 || st.Refused != 0) {
			t.Errorf("%s: stats = %d/%d, want 1 admitted", c.name, st.Admitted, st.Refused)
		}
		if !c.admit && (st.Admitted != 0 || st.Refused != 1) {
			t.Errorf("%s: stats = %d/%d, want 1 refused", c.name, st.Admitted, st.Refused)
		}
	}
}

// TestAdmissionAlwaysMode: without AdmissionCost every view registers
// and no decision is counted.
func TestAdmissionAlwaysMode(t *testing.T) {
	r := New(instance(2, 50), Config{})
	q := query(t, agg.Count)
	if _, strat, err := r.Answer(q); err != nil || strat != StrategyCached && strat != StrategyDirect {
		t.Fatalf("answer: %v %v", strat, err)
	}
	if r.Entries() != 1 {
		t.Fatalf("entries = %d, want 1 (admit-always)", r.Entries())
	}
	st := r.Stats()
	if st.Admitted != 0 || st.Refused != 0 {
		t.Fatalf("admit-always counted decisions: %+v", st)
	}
}

// TestCostAdmissionEndToEnd: against a real instance, a shape the
// workload profiler has seen repeatedly is admitted on evaluation
// (and answers "cached" afterwards), while a shape the profiler never
// saw — the one-off — is refused and stays on direct evaluation.
func TestCostAdmissionEndToEnd(t *testing.T) {
	st := instance(3, 120)
	hot := query(t, agg.Count) // the repeatedly-hit cheap shape
	oneOff := query(t, agg.Sum)

	wl := fakeWorkload{Fingerprint(hot): 1_000_000} // heavy observed reuse
	r := New(st, Config{AdmissionCost: true, Workload: wl})

	cube, strat, err := r.Answer(hot)
	if err != nil || strat != StrategyDirect {
		t.Fatalf("first hot answer: %v %v", strat, err)
	}
	checkAgainstDirect(t, r, hot, cube, "hot")
	if r.Entries() != 1 {
		t.Fatalf("hot shape not admitted: entries = %d", r.Entries())
	}
	if _, strat, _ = r.Answer(hot); strat != StrategyCached {
		t.Fatalf("second hot answer strategy = %v, want cached", strat)
	}

	for i := 0; i < 3; i++ {
		cube, strat, err = r.Answer(oneOff)
		if err != nil || strat != StrategyDirect {
			t.Fatalf("one-off answer %d: %v %v (must stay direct, never cached)", i, strat, err)
		}
	}
	checkAgainstDirect(t, r, oneOff, cube, "one-off")
	if r.Entries() != 1 {
		t.Fatalf("one-off shape admitted: entries = %d", r.Entries())
	}
	s := r.Stats()
	if s.Admitted != 1 || s.Refused != 3 {
		t.Fatalf("admission stats = %d admitted / %d refused, want 1/3", s.Admitted, s.Refused)
	}
}

// TestCostEvictionBenefitPerByte: past the budget, cost mode evicts
// the lowest benefit-per-byte entry even when it is the most recently
// used, while admit-always mode keeps evicting strict LRU.
func TestCostEvictionBenefitPerByte(t *testing.T) {
	r := New(instance(4, 10), Config{AdmissionCost: true})
	add := func(id uint64, bytes, costNs, hits int64) *entry {
		e := &entry{fam: id, key: id, bytes: bytes, costNs: costNs, hits: hits}
		r.mu.Lock()
		r.insertLocked(e)
		r.mu.Unlock()
		return e
	}
	hot := add(1, 1_000, 1_000_000_000, 5) // expensive to rebuild, hot
	mid := add(2, 1_000, 1_000_000, 0)
	dud := add(3, 1<<20, 10, 0) // huge, trivially rebuilt, never hit — and MRU

	r.SetMaxEntries(2)
	if dud.elem != nil {
		t.Fatal("cost eviction kept the lowest benefit-per-byte entry")
	}
	if hot.elem == nil || mid.elem == nil {
		t.Fatal("cost eviction dropped a higher-benefit entry")
	}
	r.SetMaxEntries(1)
	if mid.elem != nil || hot.elem == nil {
		t.Fatal("second eviction did not keep the highest-benefit entry")
	}
	if got := r.Stats().Evictions; got != 2 {
		t.Fatalf("evictions = %d, want 2", got)
	}

	// LRU mode: the same shape of registry without AdmissionCost evicts
	// the back of the list regardless of scores.
	lr := New(instance(4, 10), Config{})
	var es []*entry
	for id := uint64(1); id <= 3; id++ {
		e := &entry{fam: id, key: id, bytes: 100, costNs: 1 << 40, hits: 100}
		lr.mu.Lock()
		lr.insertLocked(e)
		lr.mu.Unlock()
		es = append(es, e)
	}
	lr.SetMaxEntries(2)
	if es[0].elem != nil || es[1].elem == nil || es[2].elem == nil {
		t.Fatal("LRU mode did not evict the oldest entry")
	}
}
