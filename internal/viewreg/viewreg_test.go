package viewreg

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"rdfcube/internal/agg"
	"rdfcube/internal/algebra"
	"rdfcube/internal/core"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

const ns = "http://e.org/"

func iri(s string) rdf.Term { return rdf.NewIRI(ns + s) }

func px() sparql.Prefixes {
	p := sparql.DefaultPrefixes()
	p[""] = ns
	return p
}

// instance builds a small multi-valued instance: facts with two
// dimensions (dim0, dim1), a drill-in-able hub attribute, and scores.
func instance(seed int64, facts int) *store.Store {
	rng := rand.New(rand.NewSource(seed))
	st := store.New()
	add := func(s, p, o rdf.Term) { st.Add(rdf.NewTriple(s, p, o)) }
	for h := 0; h < 5; h++ {
		hub := iri(fmt.Sprintf("hub%d", h))
		add(hub, iri("label"), rdf.NewInt(int64(h)))
		add(hub, iri("tag"), iri(fmt.Sprintf("tag%d", h%3)))
	}
	for f := 0; f < facts; f++ {
		x := iri(fmt.Sprintf("fact%d", f))
		add(x, rdf.Type, iri("Fact"))
		add(x, iri("dim0"), rdf.NewInt(int64(rng.Intn(4))))
		if rng.Float64() < 0.3 {
			add(x, iri("dim0"), rdf.NewInt(int64(4+rng.Intn(2))))
		}
		add(x, iri("at"), iri(fmt.Sprintf("hub%d", rng.Intn(5))))
		add(x, iri("score"), rdf.NewInt(int64(1+rng.Intn(9))))
	}
	st.Freeze()
	return st
}

func query(t *testing.T, f agg.Func) *core.Query {
	t.Helper()
	c := sparql.MustParseDatalog(
		"c(x, d0, d1) :- x rdf:type :Fact, x :dim0 d0, x :at h, h :label d1, h :tag d2", px())
	m := sparql.MustParseDatalog("m(x, v) :- x rdf:type :Fact, x :score v", px())
	q, err := core.New(c, m, f)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// checkAgainstDirect asserts cube (possibly with permuted columns)
// matches a fresh direct evaluation of q.
func checkAgainstDirect(t *testing.T, r *Registry, q *core.Query, cube *algebra.Relation, label string) {
	t.Helper()
	direct, err := r.Evaluator().Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if !algebra.Equal(direct, cube.Project(direct.Cols...)) {
		t.Fatalf("%s: cube differs from direct evaluation\n got: %v\nwant: %v",
			label, cube.Rows, direct.Rows)
	}
}

func TestHeadRelation(t *testing.T) {
	cases := []struct {
		e, q []string
		want headRelationKind
	}{
		{[]string{"x", "a", "b"}, []string{"x", "b", "a"}, headEqual},
		{[]string{"x", "a", "b"}, []string{"x", "a"}, headSubset},
		{[]string{"x", "a"}, []string{"x", "a", "c"}, headSuperset},
		{[]string{"x", "a"}, []string{"x", "b"}, headUnrelated},
		{[]string{"x", "a"}, []string{"y", "a"}, headUnrelated},
	}
	for _, c := range cases {
		if got := headRelation(c.e, c.q); got != c.want {
			t.Errorf("headRelation(%v, %v) = %d, want %d", c.e, c.q, got, c.want)
		}
	}
}

func TestSigmaRefines(t *testing.T) {
	v1, v2 := rdf.NewInt(1), rdf.NewInt(2)
	if !sigmaRefines(core.Sigma{}, core.Sigma{"d": {v1}}) {
		t.Error("adding a restriction is a refinement")
	}
	if !sigmaRefines(core.Sigma{"d": {v1, v2}}, core.Sigma{"d": {v1}}) {
		t.Error("shrinking a value set is a refinement")
	}
	if sigmaRefines(core.Sigma{"d": {v1}}, core.Sigma{}) {
		t.Error("dropping a restriction is not a refinement")
	}
	if sigmaRefines(core.Sigma{"d": {v1}}, core.Sigma{"d": {v2}}) {
		t.Error("disjoint value sets are not refinements")
	}
}

func TestFingerprints(t *testing.T) {
	q := query(t, agg.Sum)
	fam := familyKey(q)
	if familyKey(q.Clone()) != fam {
		t.Error("clone changed family key")
	}
	sliced, err := core.Slice(q, "d0", rdf.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if familyKey(sliced) != fam {
		t.Error("SLICE must stay in the family")
	}
	if exactKey(fam, sliced) == exactKey(fam, q) {
		t.Error("SLICE must change the exact key")
	}
	out, err := core.DrillOut(q, "d1")
	if err != nil {
		t.Fatal(err)
	}
	if familyKey(out) != fam {
		t.Error("DRILL-OUT must stay in the family (classifier body unchanged)")
	}
	if exactKey(fam, out) == exactKey(fam, q) {
		t.Error("DRILL-OUT must change the exact key")
	}
	// Permuting dimensions keeps the exact key (canonicalized head) but
	// coalescing is still guarded by sameAnswerShape.
	perm := q.Clone()
	perm.Classifier.Head = []string{"x", "d1", "d0"}
	if exactKey(fam, perm) != exactKey(fam, q) {
		t.Error("dimension order must not change the exact key")
	}
	if sameAnswerShape(perm, q) {
		t.Error("permuted dims are not answer-shape-identical")
	}
	q2 := query(t, agg.Count)
	if familyKey(q2) == fam {
		t.Error("different aggregation must change the family")
	}
}

func TestRewriteStrategiesSharedAcrossClients(t *testing.T) {
	// Client A materializes the base cube; clients B, C, D issue OLAP
	// transformations of it and must be served by rewriting, each
	// matching direct evaluation.
	r := New(instance(1, 80), Config{})
	base := query(t, agg.Sum)
	if _, s, err := r.Answer(base); err != nil || s != StrategyDirect {
		t.Fatalf("base: strategy %v err %v", s, err)
	}

	diced, err := core.Dice(base, map[string][]rdf.Term{"d0": {rdf.NewInt(1), rdf.NewInt(2)}})
	if err != nil {
		t.Fatal(err)
	}
	cube, s, err := r.Answer(diced)
	if err != nil || s != StrategyDice {
		t.Fatalf("dice: strategy %v err %v", s, err)
	}
	checkAgainstDirect(t, r, diced, cube, "dice")

	qOut, err := core.DrillOut(base, "d1")
	if err != nil {
		t.Fatal(err)
	}
	cube, s, err = r.Answer(qOut)
	if err != nil || s != StrategyDrillOut {
		t.Fatalf("drill-out: strategy %v err %v", s, err)
	}
	checkAgainstDirect(t, r, qOut, cube, "drill-out")

	qIn, err := core.DrillIn(base, "d2")
	if err != nil {
		t.Fatal(err)
	}
	cube, s, err = r.Answer(qIn)
	if err != nil || s != StrategyDrillIn {
		t.Fatalf("drill-in: strategy %v err %v", s, err)
	}
	checkAgainstDirect(t, r, qIn, cube, "drill-in")

	if got := r.Stats().ByStrategy[StrategyDirect]; got != 1 {
		t.Errorf("direct evaluations = %d, want 1", got)
	}
}

func TestConcurrentIdenticalQueriesEvaluateOnce(t *testing.T) {
	r := New(instance(2, 120), Config{})
	base := query(t, agg.Sum)
	direct, err := r.Evaluator().Answer(base)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 16
	var wg sync.WaitGroup
	cubes := make([]*algebra.Relation, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cubes[i], _, errs[i] = r.Answer(base.Clone())
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !algebra.Equal(direct, cubes[i].Project(direct.Cols...)) {
			t.Fatalf("client %d got a wrong cube", i)
		}
	}
	st := r.Stats()
	if st.ByStrategy[StrategyDirect] != 1 {
		t.Errorf("direct evaluations = %d, want exactly 1 (stats: %+v)", st.ByStrategy[StrategyDirect], st)
	}
	if st.ByStrategy[StrategyCached] != clients-1 {
		t.Errorf("cached answers = %d, want %d", st.ByStrategy[StrategyCached], clients-1)
	}
	if r.Entries() != 1 {
		t.Errorf("Entries = %d, want 1", r.Entries())
	}
}

func TestConcurrentTransformationsRewriteAfterOneDirect(t *testing.T) {
	// Every client runs the same session: base cube, then a DICE, then a
	// DRILL-OUT. Across all clients there must be exactly one direct
	// evaluation, and every rewrite must agree with direct evaluation.
	r := New(instance(3, 100), Config{})
	base := query(t, agg.Sum)

	const clients = 8
	var wg sync.WaitGroup
	type result struct {
		strategy Strategy
		cube     *algebra.Relation
		err      error
	}
	dice := make([]result, clients)
	drill := make([]result, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := r.Answer(base.Clone()); err != nil {
				dice[i].err = err
				return
			}
			diced, err := core.Dice(base, map[string][]rdf.Term{"d0": {rdf.NewInt(0), rdf.NewInt(3)}})
			if err != nil {
				dice[i].err = err
				return
			}
			dice[i].cube, dice[i].strategy, dice[i].err = r.Answer(diced)
			qOut, err := core.DrillOut(base, "d0")
			if err != nil {
				drill[i].err = err
				return
			}
			drill[i].cube, drill[i].strategy, drill[i].err = r.Answer(qOut)
		}(i)
	}
	wg.Wait()

	diced, _ := core.Dice(base, map[string][]rdf.Term{"d0": {rdf.NewInt(0), rdf.NewInt(3)}})
	qOut, _ := core.DrillOut(base, "d0")
	for i := 0; i < clients; i++ {
		if dice[i].err != nil || drill[i].err != nil {
			t.Fatalf("client %d: dice err %v drill err %v", i, dice[i].err, drill[i].err)
		}
		if dice[i].strategy != StrategyDice {
			t.Errorf("client %d: dice strategy = %s", i, dice[i].strategy)
		}
		if drill[i].strategy != StrategyDrillOut {
			t.Errorf("client %d: drill-out strategy = %s", i, drill[i].strategy)
		}
		checkAgainstDirect(t, r, diced, dice[i].cube, fmt.Sprintf("client %d dice", i))
		checkAgainstDirect(t, r, qOut, drill[i].cube, fmt.Sprintf("client %d drill-out", i))
	}
	st := r.Stats()
	if st.ByStrategy[StrategyDirect] != 1 {
		t.Errorf("direct evaluations = %d, want exactly 1 (stats: %+v)", st.ByStrategy[StrategyDirect], st)
	}
	if st.ByStrategy[StrategyDice] != clients || st.ByStrategy[StrategyDrillOut] != clients {
		t.Errorf("rewrite counts = %+v, want %d each", st.ByStrategy, clients)
	}
}

func TestByteBoundedLRUEviction(t *testing.T) {
	st := instance(4, 60)
	r := New(st, Config{})
	base := query(t, agg.Sum)

	// Distinct single-value slices are not refinements of one another:
	// each forces a direct evaluation and registers a new entry.
	slice := func(i int) *core.Query {
		t.Helper()
		q, err := core.Slice(base, "d1", rdf.NewInt(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		return q
	}

	// Materialize one sliced cube to learn a realistic entry size, then
	// bound the registry to roughly two entries' worth of bytes.
	if _, s, err := r.Answer(slice(0)); err != nil || s != StrategyDirect {
		t.Fatalf("slice 0: strategy %v err %v", s, err)
	}
	one := r.Bytes()
	if one <= 0 {
		t.Fatalf("Bytes = %d, want > 0", one)
	}
	budget := 2*one + one/2
	r.SetLimits(0, budget)

	for i := 1; i < 5; i++ {
		if _, s, err := r.Answer(slice(i)); err != nil || s != StrategyDirect {
			t.Fatalf("slice %d: strategy %v err %v", i, s, err)
		}
	}
	stats := r.Stats()
	if stats.Bytes > budget {
		t.Errorf("Bytes = %d exceeds budget %d", stats.Bytes, budget)
	}
	if stats.Evictions == 0 {
		t.Error("expected evictions under the byte budget")
	}
	if stats.Entries >= 5 {
		t.Errorf("Entries = %d, want < 5 after eviction", stats.Entries)
	}

	// The evicted first slice must be re-evaluated — and still correct.
	cube, s, err := r.Answer(slice(0))
	if err != nil {
		t.Fatal(err)
	}
	if s != StrategyDirect {
		t.Errorf("evicted slice answered by %s, want direct", s)
	}
	checkAgainstDirect(t, r, slice(0), cube, "re-evaluated slice")
}

func TestOversizedEntryNotRetained(t *testing.T) {
	r := New(instance(5, 60), Config{MaxBytes: 1}) // nothing fits
	base := query(t, agg.Sum)
	cube, s, err := r.Answer(base)
	if err != nil || s != StrategyDirect {
		t.Fatalf("strategy %v err %v", s, err)
	}
	checkAgainstDirect(t, r, base, cube, "oversized")
	if r.Entries() != 0 {
		t.Errorf("Entries = %d, want 0 (entry exceeds whole budget)", r.Entries())
	}
}

func TestWriteEpochInvalidation(t *testing.T) {
	st := instance(6, 50)
	r := New(st, Config{})
	base := query(t, agg.Sum)
	stale, s, err := r.Answer(base)
	if err != nil || s != StrategyDirect {
		t.Fatalf("strategy %v err %v", s, err)
	}

	// Write a triple that changes the cube: a new fact contributing to
	// dim0=0 cells.
	x := iri("newfact")
	st.Add(rdf.NewTriple(x, rdf.Type, iri("Fact")))
	st.Add(rdf.NewTriple(x, iri("dim0"), rdf.NewInt(0)))
	st.Add(rdf.NewTriple(x, iri("at"), iri("hub0")))
	st.Add(rdf.NewTriple(x, iri("score"), rdf.NewInt(1000)))
	st.Freeze()

	cube, s, err := r.Answer(base.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if s != StrategyDirect {
		t.Fatalf("post-write strategy = %s, want direct (stale view served!)", s)
	}
	checkAgainstDirect(t, r, base, cube, "post-write")
	if algebra.Equal(stale, cube) {
		t.Fatal("write did not change the cube; invalidation untested")
	}
	if got := r.Stats().Invalidations; got == 0 {
		t.Errorf("Invalidations = %d, want > 0", got)
	}

	// Transformations after the write rewrite against the *new* view.
	diced, err := core.Dice(base, map[string][]rdf.Term{"d0": {rdf.NewInt(0)}})
	if err != nil {
		t.Fatal(err)
	}
	dcube, s, err := r.Answer(diced)
	if err != nil || s != StrategyDice {
		t.Fatalf("dice after write: strategy %v err %v", s, err)
	}
	checkAgainstDirect(t, r, diced, dcube, "dice after write")
}

// newFact inserts one synthetic fact's triples directly into the store
// (the out-of-band write path a server write handler uses) and reports
// how many triples were new.
func newFact(st *store.Store, i int, dim0, score int64) int {
	x := iri(fmt.Sprintf("wfact%d", i))
	added := 0
	for _, tr := range []rdf.Triple{
		{S: x, P: rdf.Type, O: iri("Fact")},
		{S: x, P: iri("dim0"), O: rdf.NewInt(dim0)},
		{S: x, P: iri("at"), O: iri("hub1")},
		{S: x, P: iri("score"), O: rdf.NewInt(score)},
	} {
		if st.Add(tr) {
			added++
		}
	}
	return added
}

// TestDeltaWritesMaintainViews is the tentpole acceptance scenario:
// after N inserts below the compaction threshold, a previously
// registered view answers a rewritable query *without* a direct
// re-evaluation — the view is maintained through the store's delta feed
// — and its cube is identical to direct evaluation.
func TestDeltaWritesMaintainViews(t *testing.T) {
	st := instance(10, 60) // frozen by the helper
	r := New(st, Config{})
	base := query(t, agg.Sum)
	if _, s, err := r.Answer(base); err != nil || s != StrategyDirect {
		t.Fatalf("base: strategy %v err %v", s, err)
	}

	for round := 0; round < 3; round++ {
		// Writes land in the delta overlay: the base stays frozen.
		for i := 0; i < 4; i++ {
			newFact(st, round*10+i, int64(i%4), int64(100+i))
		}
		if !st.IsFrozen() {
			t.Fatal("writes dropped the frozen base")
		}
		r.NotifyWrite()

		// The identical query is served from the maintained view...
		cube, s, err := r.Answer(base.Clone())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if s != StrategyCached {
			t.Fatalf("round %d: strategy %s, want cached (maintained view)", round, s)
		}
		// ...and reflects the writes exactly.
		checkAgainstDirect(t, r, base, cube, fmt.Sprintf("round %d maintained", round))

		// A DICE of it rewrites against the maintained view too.
		diced, err := core.Dice(base, map[string][]rdf.Term{"d0": {rdf.NewInt(1), rdf.NewInt(2)}})
		if err != nil {
			t.Fatal(err)
		}
		dcube, s, err := r.Answer(diced)
		if err != nil || s != StrategyDice {
			t.Fatalf("round %d dice: strategy %v err %v", round, s, err)
		}
		checkAgainstDirect(t, r, diced, dcube, fmt.Sprintf("round %d dice", round))
	}

	stats := r.Stats()
	if stats.ByStrategy[StrategyDirect] != 1 {
		t.Errorf("direct evaluations = %d, want exactly 1 — views must be maintained, not recomputed (stats %+v)",
			stats.ByStrategy[StrategyDirect], stats)
	}
	if stats.Maintained == 0 {
		t.Error("Maintained = 0, want > 0")
	}
	if stats.Invalidations != 0 {
		t.Errorf("Invalidations = %d, want 0 (no base-epoch move happened)", stats.Invalidations)
	}
}

// TestLookupTimeMaintenance: even without a write notification, a
// delta-stale view is caught up at lookup instead of being dropped.
func TestLookupTimeMaintenance(t *testing.T) {
	st := instance(11, 50)
	r := New(st, Config{})
	base := query(t, agg.Sum)
	if _, _, err := r.Answer(base); err != nil {
		t.Fatal(err)
	}
	newFact(st, 1, 2, 500)
	// No NotifyWrite: the lookup must maintain.
	cube, s, err := r.Answer(base.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if s != StrategyCached {
		t.Fatalf("strategy %s, want cached via lookup-time maintenance", s)
	}
	checkAgainstDirect(t, r, base, cube, "lookup-time maintained")
	if got := r.Stats().Maintained; got != 1 {
		t.Errorf("Maintained = %d, want 1", got)
	}
}

// TestCompactionEvictsViews: a compaction (explicit Freeze with pending
// delta) moves the base epoch; maintained entries cannot replay the feed
// and must fall back to eviction + direct re-evaluation.
func TestCompactionEvictsViews(t *testing.T) {
	st := instance(12, 50)
	r := New(st, Config{})
	base := query(t, agg.Sum)
	if _, _, err := r.Answer(base); err != nil {
		t.Fatal(err)
	}
	newFact(st, 1, 1, 250)
	st.Freeze() // compacts: base epoch moves, feed gone
	r.NotifyWrite()
	if got := r.Stats().Invalidations; got == 0 {
		t.Error("NotifyWrite did not sweep the base-stale entry (memory accounting would lag until lookup)")
	}
	if got := r.Entries(); got != 0 {
		t.Errorf("Entries = %d, want 0 after eager sweep", got)
	}
	cube, s, err := r.Answer(base.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if s != StrategyDirect {
		t.Fatalf("post-compaction strategy %s, want direct", s)
	}
	checkAgainstDirect(t, r, base, cube, "post-compaction")
}

// TestNegativeCacheSkipsRepeatedMisses: when a query's family scan finds
// no applicable rewrite and its own registration is not retained (the
// byte budget admits nothing), repeated asks skip the candidate scan.
func TestNegativeCacheSkipsRepeatedMisses(t *testing.T) {
	r := New(instance(13, 40), Config{MaxBytes: 1})
	base := query(t, agg.Sum)
	want, s, err := r.Answer(base)
	if err != nil || s != StrategyDirect {
		t.Fatalf("first: strategy %v err %v", s, err)
	}
	if got := r.Stats().NegSkips; got != 0 {
		t.Fatalf("NegSkips after first answer = %d", got)
	}
	got, s, err := r.Answer(base.Clone())
	if err != nil || s != StrategyDirect {
		t.Fatalf("second: strategy %v err %v", s, err)
	}
	if !algebra.Equal(want, got) {
		t.Fatal("negative-cache path changed the cube")
	}
	if skips := r.Stats().NegSkips; skips != 1 {
		t.Errorf("NegSkips = %d, want 1", skips)
	}

	// A write moves the version: the recorded miss no longer applies.
	newFact(r.Instance(), 1, 0, 10)
	if _, _, err := r.Answer(base.Clone()); err != nil {
		t.Fatal(err)
	}
	if skips := r.Stats().NegSkips; skips != 1 {
		t.Errorf("NegSkips after version move = %d, want still 1", skips)
	}
}

func TestEvaluationRacedByWriteIsNotRegistered(t *testing.T) {
	// Registration is skipped when the epoch moves during evaluation.
	// Simulated by bumping the epoch from another goroutine is racy with
	// map reads, so sequence it: capture epoch, write, then answer — the
	// entry must carry the *new* epoch and still validate. The inverse
	// (write between capture and publish) is covered by the implementation
	// check r.st.Epoch() == epoch at insert; exercise it via Thaw-safe
	// sequencing: answer on a store, write, answer again, and confirm
	// entries never exceed live epochs.
	st := instance(7, 40)
	r := New(st, Config{})
	base := query(t, agg.Sum)
	if _, _, err := r.Answer(base); err != nil {
		t.Fatal(err)
	}
	st.Add(rdf.NewTriple(iri("extra"), rdf.Type, iri("Fact")))
	st.Freeze()
	if _, s, err := r.Answer(base.Clone()); err != nil || s != StrategyDirect {
		t.Fatalf("strategy %v err %v", s, err)
	}
	if r.Entries() != 1 {
		t.Errorf("Entries = %d, want 1 (stale entry replaced)", r.Entries())
	}
}

func TestDescribe(t *testing.T) {
	r := New(instance(8, 30), Config{})
	if _, _, err := r.Answer(query(t, agg.Sum)); err != nil {
		t.Fatal(err)
	}
	d := r.Describe()
	if len(d) == 0 || d[0] != '1' {
		t.Errorf("Describe = %q", d)
	}
}

func TestRelationBytes(t *testing.T) {
	rel := algebra.NewRelation("a", "b")
	small := relationBytes(rel)
	for i := 0; i < 100; i++ {
		rel.Append(algebra.Row{algebra.NumV(1), algebra.NumV(2)})
	}
	big := relationBytes(rel)
	if big <= small {
		t.Errorf("relationBytes did not grow with rows: %d -> %d", small, big)
	}
	if relationBytes(nil) != 0 {
		t.Error("nil relation must cost 0")
	}
}

// TestRewriteSingleFlightDeterministic: a query arriving while an
// identical rewrite scan is in flight must wait for the leader's cube
// instead of recomputing σ_dice — exercised deterministically by
// planting the flight by hand.
func TestRewriteSingleFlightDeterministic(t *testing.T) {
	inst := instance(10, 300)
	r := New(inst, Config{})
	q := query(t, agg.Sum)
	if _, _, err := r.Answer(q); err != nil {
		t.Fatal(err)
	}
	diced, err := core.Dice(q, map[string][]rdf.Term{"d0": {rdf.NewInt(1), rdf.NewInt(2)}})
	if err != nil {
		t.Fatal(err)
	}

	// Plant a leader flight for the diced query's exact fingerprint.
	key := exactKey(familyKey(diced), diced)
	fl := &rewriteFlight{query: diced.Clone(), epoch: r.st.Epoch(), done: make(chan struct{})}
	r.mu.Lock()
	r.rwFlight[key] = fl
	r.mu.Unlock()

	type answer struct {
		cube *algebra.Relation
		strt Strategy
		err  error
	}
	got := make(chan answer, 1)
	go func() {
		cube, strt, err := r.Answer(diced)
		got <- answer{cube, strt, err}
	}()

	// Wait until the follower has parked on the flight, then publish a
	// cube and check it comes back verbatim.
	for {
		r.mu.Lock()
		parked := r.coalescedRw == 1
		r.mu.Unlock()
		if parked {
			break
		}
		runtime.Gosched()
	}
	want, err := r.Evaluator().DiceRewrite(diced, mustEntryAns(t, r, q))
	if err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	delete(r.rwFlight, key)
	r.mu.Unlock()
	fl.cube, fl.strategy = want, StrategyDice
	close(fl.done)

	a := <-got
	if a.err != nil {
		t.Fatal(a.err)
	}
	if a.strt != StrategyDice || !algebra.Equal(a.cube, want) {
		t.Fatalf("follower got strategy %s (%d cells), want the leader's dice cube (%d cells)",
			a.strt, a.cube.Len(), want.Len())
	}
	if a.cube == want {
		t.Fatal("follower must receive a private clone, not the shared flight cube")
	}
	st := r.Stats()
	if st.CoalescedRewrites != 1 {
		t.Fatalf("CoalescedRewrites = %d, want 1", st.CoalescedRewrites)
	}
	if st.ByStrategy[StrategyDice] != 1 {
		t.Fatalf("dice strategy count = %d, want 1", st.ByStrategy[StrategyDice])
	}
}

// mustEntryAns digs the registered ans(Q) for q out of the registry.
func mustEntryAns(t *testing.T, r *Registry, q *core.Query) *algebra.Relation {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.families[familyKey(q)] {
		if sameAnswerShape(e.query, q) {
			return e.ans
		}
	}
	t.Fatal("query not registered")
	return nil
}

// TestRewriteSingleFlightConcurrent: N concurrent identical DICEs all
// answer correctly; the coalesced ones reuse the one computed cube.
func TestRewriteSingleFlightConcurrent(t *testing.T) {
	inst := instance(11, 400)
	r := New(inst, Config{})
	q := query(t, agg.Sum)
	if _, _, err := r.Answer(q); err != nil {
		t.Fatal(err)
	}
	diced, err := core.Dice(q, map[string][]rdf.Term{"d0": {rdf.NewInt(0), rdf.NewInt(3)}})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 16
	var wg sync.WaitGroup
	cubes := make([]*algebra.Relation, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cube, strt, err := r.Answer(diced)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			if strt != StrategyDice {
				t.Errorf("client %d: strategy %s, want dice-rewrite", i, strt)
			}
			cubes[i] = cube
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i := 1; i < clients; i++ {
		if !algebra.Equal(cubes[0], cubes[i]) {
			t.Fatalf("client %d got a different cube", i)
		}
	}
	st := r.Stats()
	if n := st.ByStrategy[StrategyDice]; n != clients {
		t.Fatalf("dice strategy count = %d, want %d", n, clients)
	}
	checkAgainstDirect(t, r, diced, cubes[0], "coalesced dice")
}
