package viewreg

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"rdfcube/internal/agg"
	"rdfcube/internal/algebra"
	"rdfcube/internal/core"
	"rdfcube/internal/persist"
	"rdfcube/internal/rdf"
	"rdfcube/internal/store"
)

// snapshotReload roundtrips st through the frozen v2 snapshot, giving
// the "recovered store" of a warm-start scenario: identical contents and
// dictionary ID assignment, fresh memory.
func snapshotReload(t *testing.T, st *store.Store) *store.Store {
	t.Helper()
	var buf bytes.Buffer
	if err := st.WriteFrozenSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := store.OpenFrozenSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSaveRestoreWarmStart(t *testing.T) {
	inst := instance(7, 300)
	reg := New(inst, Config{})
	q := query(t, agg.Sum)

	want, strat, err := reg.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if strat != StrategyDirect {
		t.Fatalf("first answer strategy %s, want direct", strat)
	}

	var views bytes.Buffer
	if _, err := reg.Save(&views); err != nil {
		t.Fatal(err)
	}

	// "Restart": recover the store from its snapshot and warm a fresh
	// registry from the view snapshot.
	recovered := snapshotReload(t, inst)
	reg2 := New(recovered, Config{})
	n, err := reg2.Restore(bytes.NewReader(views.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d views, want 1", n)
	}

	got, strat, err := reg2.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if strat != StrategyCached {
		t.Fatalf("warmed answer strategy %s, want cached (no direct re-evaluation)", strat)
	}
	if reg2.Stats().ByStrategy[StrategyDirect] != 0 {
		t.Fatal("warm start performed a direct evaluation")
	}
	if !algebra.Equal(want, got) {
		t.Fatal("warmed cube differs from pre-restart cube")
	}

	// Rewrites over the warmed view must work too (drill-out from pres).
	qOut, err := core.DrillOut(q, "d1")
	if err != nil {
		t.Fatal(err)
	}
	cube, strat, err := reg2.Answer(qOut)
	if err != nil {
		t.Fatal(err)
	}
	if strat != StrategyDrillOut {
		t.Fatalf("drill-out strategy %s, want drillout-rewrite", strat)
	}
	checkAgainstDirect(t, reg2, qOut, cube, "warmed drill-out")
}

func TestRestoreSyncsBehindViews(t *testing.T) {
	inst := instance(11, 200)
	reg := New(inst, Config{})
	q := query(t, agg.Count)
	if _, _, err := reg.Answer(q); err != nil {
		t.Fatal(err)
	}

	// Snapshot the *store* first, then the views, then write more facts:
	// the recovered store replays the writes (WAL analog below is a
	// direct re-apply), leaving the saved views behind on the delta
	// sequence — Restore must Sync them through the feed.
	var storeSnap bytes.Buffer
	if err := inst.WriteFrozenSnapshot(&storeSnap); err != nil {
		t.Fatal(err)
	}
	var views bytes.Buffer
	if _, err := reg.Save(&views); err != nil {
		t.Fatal(err)
	}
	late := []rdf.Triple{
		rdf.NewTriple(iri("factL0"), rdf.Type, iri("Fact")),
		rdf.NewTriple(iri("factL0"), iri("dim0"), rdf.NewInt(1)),
		rdf.NewTriple(iri("factL0"), iri("at"), iri("hub1")),
		rdf.NewTriple(iri("factL0"), iri("score"), rdf.NewInt(5)),
	}
	for _, tr := range late {
		inst.Add(tr)
	}

	recovered, err := store.OpenFrozenSnapshot(bytes.NewReader(storeSnap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range late { // the WAL-replay analog
		recovered.Add(tr)
	}
	if recovered.Version() != inst.Version() {
		t.Fatalf("recovered version %+v, want %+v", recovered.Version(), inst.Version())
	}

	reg2 := New(recovered, Config{})
	n, err := reg2.Restore(bytes.NewReader(views.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d views, want 1", n)
	}
	got, strat, err := reg2.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if strat != StrategyCached {
		t.Fatalf("strategy %s, want cached", strat)
	}
	checkAgainstDirect(t, reg2, q, got, "synced warm view")
}

func TestRestoreRejectsMismatchedStore(t *testing.T) {
	inst := instance(3, 100)
	reg := New(inst, Config{})
	q := query(t, agg.Sum)
	if _, _, err := reg.Answer(q); err != nil {
		t.Fatal(err)
	}
	var views bytes.Buffer
	if _, err := reg.Save(&views); err != nil {
		t.Fatal(err)
	}

	// A store at a different base epoch must warm nothing.
	other := instance(3, 100)
	other.Add(rdf.NewTriple(iri("zap"), rdf.Type, iri("Fact")))
	other.Freeze() // compaction moves the base epoch
	regOther := New(other, Config{})
	if n, err := regOther.Restore(bytes.NewReader(views.Bytes())); err != nil || n != 0 {
		t.Fatalf("mismatched store restored %d views (err %v), want 0", n, err)
	}

	// Corrupt view files fail closed.
	raw := views.Bytes()
	for _, cut := range []int{0, 3, 10, len(raw) / 2} {
		if _, err := New(inst, Config{}).Restore(bytes.NewReader(raw[:cut])); !errors.Is(err, persist.ErrCorrupt) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-5] ^= 0x20
	if _, err := New(inst, Config{}).Restore(bytes.NewReader(flipped)); !errors.Is(err, persist.ErrCorrupt) {
		t.Fatal("bit flip not detected")
	}
}

func TestSaveRestoreManyViews(t *testing.T) {
	inst := instance(5, 200)
	reg := New(inst, Config{})
	base := query(t, agg.Sum)
	if _, _, err := reg.Answer(base); err != nil {
		t.Fatal(err)
	}
	// Register distinct Σ variants (dice refinements answered directly
	// would be rewrites; use distinct measure aggs to force direct).
	for _, f := range []agg.Func{agg.Count, agg.Min, agg.Max} {
		q := query(t, f)
		if _, _, err := reg.Answer(q); err != nil {
			t.Fatal(err)
		}
	}
	if reg.Entries() != 4 {
		t.Fatalf("registered %d views, want 4", reg.Entries())
	}

	var views bytes.Buffer
	if _, err := reg.Save(&views); err != nil {
		t.Fatal(err)
	}
	recovered := snapshotReload(t, inst)
	reg2 := New(recovered, Config{})
	n, err := reg2.Restore(bytes.NewReader(views.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("restored %d views, want 4", n)
	}
	for _, f := range []agg.Func{agg.Sum, agg.Count, agg.Min, agg.Max} {
		q := query(t, f)
		cube, strat, err := reg2.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if strat != StrategyCached {
			t.Fatalf("agg %s: strategy %s, want cached", f.Name(), strat)
		}
		checkAgainstDirect(t, reg2, q, cube, fmt.Sprintf("agg %s", f.Name()))
	}
}
