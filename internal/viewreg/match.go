package viewreg

// Syntactic rewriting detection, generalized from internal/session: given
// a materialized query Q and a candidate query Q_T, decide which of the
// paper's rewritings (Propositions 1-3) answers Q_T from pres(Q)/ans(Q).
// Detection is purely syntactic — classifier/measure bodies must match
// pattern for pattern (order-insensitive) with identical variable names,
// the aggregation function must be identical, and Σ must relate by
// refinement — which is exactly what holds when clients transform each
// other's queries with the OLAP operations.
//
// The file also defines the two query fingerprints the registry indexes
// by (built on internal/hash64):
//
//   - the family key groups every query that shares root, measure,
//     aggregation function and classifier *body* — the precondition of
//     all five strategies — so lookup scans one bucket, not the registry;
//   - the exact key additionally canonicalizes the dimension head and Σ,
//     identifying queries with identical answers; it keys the
//     single-flight table that collapses concurrent identical
//     evaluations.

import (
	"sort"

	"rdfcube/internal/core"
	"rdfcube/internal/hash64"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
)

type headRelationKind int

const (
	headUnrelated headRelationKind = iota
	headEqual
	headSubset   // candidate's dims ⊂ entry's dims (drill-out candidate)
	headSuperset // candidate's dims ⊃ entry's dims (drill-in candidate)
)

// headRelation compares classifier heads. The root (first variable) must
// match; dimension order is irrelevant.
func headRelation(eHead, qHead []string) headRelationKind {
	if len(eHead) == 0 || len(qHead) == 0 || eHead[0] != qHead[0] {
		return headUnrelated
	}
	eDims := toSet(eHead[1:])
	qDims := toSet(qHead[1:])
	eInQ, qInE := true, true
	for d := range eDims {
		if !qDims[d] {
			eInQ = false
		}
	}
	for d := range qDims {
		if !eDims[d] {
			qInE = false
		}
	}
	switch {
	case eInQ && qInE:
		return headEqual
	case qInE:
		return headSubset
	case eInQ:
		return headSuperset
	default:
		return headUnrelated
	}
}

func toSet(ss []string) map[string]bool {
	out := make(map[string]bool, len(ss))
	for _, s := range ss {
		out[s] = true
	}
	return out
}

// missingDims returns the elements of all that are absent from kept,
// preserving all's order.
func missingDims(all, kept []string) []string {
	k := toSet(kept)
	var out []string
	for _, d := range all {
		if !k[d] {
			out = append(out, d)
		}
	}
	return out
}

// sameMeasure reports whether the two queries' measures are syntactically
// identical (same head, same body patterns up to order).
func sameMeasure(a, b *core.Query) bool {
	if len(a.Measure.Head) != len(b.Measure.Head) {
		return false
	}
	for i := range a.Measure.Head {
		if a.Measure.Head[i] != b.Measure.Head[i] {
			return false
		}
	}
	return sameBody(a.Measure, b.Measure)
}

// sameBody reports whether two queries have the same pattern multiset.
func sameBody(a, b *sparql.Query) bool {
	if len(a.Patterns) != len(b.Patterns) {
		return false
	}
	ka := patternKeys(a)
	kb := patternKeys(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func patternKeys(q *sparql.Query) []string {
	keys := make([]string, len(q.Patterns))
	for i, tp := range q.Patterns {
		keys[i] = tp.String()
	}
	sort.Strings(keys)
	return keys
}

// sigmaEqual reports Σ_a == Σ_b (same restricted dims, same value sets).
func sigmaEqual(a, b core.Sigma) bool {
	if len(a) != len(b) {
		return false
	}
	for dim, va := range a {
		vb, ok := b[dim]
		if !ok || !sameTermSet(va, vb) {
			return false
		}
	}
	return true
}

// sigmaEqualOn reports Σ_a == Σ_b restricted to the given dimensions.
func sigmaEqualOn(a, b core.Sigma, dims []string) bool {
	for _, d := range dims {
		va, aOK := a[d]
		vb, bOK := b[d]
		if aOK != bOK {
			return false
		}
		if aOK && !sameTermSet(va, vb) {
			return false
		}
	}
	return true
}

// sigmaRefines reports whether Σ_q refines Σ_e: every restriction of e
// is at least as strong in q (q's value sets are subsets), so filtering
// e's cube by Σ_q yields exactly q's cube.
func sigmaRefines(e, q core.Sigma) bool {
	for dim, ve := range e {
		vq, ok := q[dim]
		if !ok {
			// q relaxes a restriction of e: e's cube lacks the cells q
			// needs; not a refinement.
			return false
		}
		if !termSubset(vq, ve) {
			return false
		}
	}
	return true
}

func sameTermSet(a, b []rdf.Term) bool {
	if len(a) != len(b) {
		return false
	}
	return termSubset(a, b) && termSubset(b, a)
}

func termSubset(sub, super []rdf.Term) bool {
	set := make(map[rdf.Term]bool, len(super))
	for _, t := range super {
		set[t] = true
	}
	for _, t := range sub {
		if !set[t] {
			return false
		}
	}
	return true
}

// sameAnswerShape reports whether two queries are answer-identical
// including dimension order, so one's cube relation can be returned for
// the other verbatim. Used to verify single-flight coalescing; stricter
// than the cached strategy (which tolerates permuted dimension heads).
func sameAnswerShape(a, b *core.Query) bool {
	if a.Agg.Name() != b.Agg.Name() || !sameMeasure(a, b) || !sameBody(a.Classifier, b.Classifier) {
		return false
	}
	if len(a.Classifier.Head) != len(b.Classifier.Head) {
		return false
	}
	for i := range a.Classifier.Head {
		if a.Classifier.Head[i] != b.Classifier.Head[i] {
			return false
		}
	}
	return sigmaEqual(a.Sigma, b.Sigma)
}

// Fingerprints. Byte-wise FNV-1a over the canonical rendering, reusing
// the hash64 parameters shared by the query layers. Keys gate which
// entries are *scanned* and which evaluations *coalesce*; every consumer
// re-verifies candidates structurally, so a collision costs a comparison
// (or a redundant evaluation), never correctness.

func mixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * hash64.Prime
	}
	// Field separator: keeps ("ab","c") distinct from ("a","bc").
	return (h ^ 0x1f) * hash64.Prime
}

// familyKey fingerprints the rewrite-compatibility family of q: root
// variable, aggregation function, measure head and body, classifier body.
// Two queries related by SLICE/DICE/DRILL-OUT/DRILL-IN always share it.
func familyKey(q *core.Query) uint64 {
	h := uint64(hash64.Offset)
	h = mixString(h, q.Root())
	h = mixString(h, q.Agg.Name())
	for _, v := range q.Measure.Head {
		h = mixString(h, v)
	}
	for _, k := range patternKeys(q.Measure) {
		h = mixString(h, k)
	}
	h = mixString(h, "\x00")
	for _, k := range patternKeys(q.Classifier) {
		h = mixString(h, k)
	}
	return h
}

// Fingerprint returns q's canonical exact fingerprint — the same key
// the registry's single-flight and negative-cache tables use. The
// server tags traces and the workload profiler with it, so the
// profiler's per-shape reuse counts line up with the registry's
// admission decisions.
func Fingerprint(q *core.Query) uint64 {
	return exactKey(familyKey(q), q)
}

// exactKey extends q's family key with the canonicalized dimension set
// and Σ, fingerprinting the answer itself (up to dimension order).
func exactKey(fam uint64, q *core.Query) uint64 {
	dims := append([]string(nil), q.Dims()...)
	sort.Strings(dims)
	h := fam
	for _, d := range dims {
		h = mixString(h, d)
		vals, ok := q.Sigma[d]
		if !ok {
			continue
		}
		h = mixString(h, "\x01")
		ss := make([]string, len(vals))
		for i, t := range vals {
			ss[i] = t.String()
		}
		sort.Strings(ss)
		for _, s := range ss {
			h = mixString(h, s)
		}
	}
	return h
}
