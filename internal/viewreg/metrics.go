package viewreg

// Process-wide metrics for the registry, exported through an
// obs.Registry when Config.Metrics is set. These mirror the per-
// instance counters Stats() reports: Stats() stays per-registry (a
// server that swaps its registry after re-materialization starts the
// snapshot over, and tests rely on that), while the obs series are
// registered idempotently by name and therefore accumulate across
// instance swaps — counter semantics a Prometheus scraper can rate().
//
// Every collector pointer below is nil-safe (a zero regMetrics is a
// no-op), so the bump sites never branch on whether metrics are wired.

import "rdfcube/internal/obs"

type regMetrics struct {
	answers      map[Strategy]*obs.Counter
	evictions    *obs.Counter
	invalids     *obs.Counter
	coalesced    *obs.Counter
	coalescedRw  *obs.Counter
	maintained   *obs.Counter
	lazyUpgrades *obs.Counter
	negSkips     *obs.Counter
	maintainSec  *obs.Histogram
	admitted     *obs.Counter
	refused      *obs.Counter
}

func wireMetrics(m *obs.Registry) regMetrics {
	if m == nil {
		return regMetrics{}
	}
	mx := regMetrics{answers: make(map[Strategy]*obs.Counter, len(Strategies))}
	for _, s := range Strategies {
		mx.answers[s] = m.Counter("rdfcube_viewreg_answers_total",
			"Queries answered by the view registry, by strategy.",
			"strategy", string(s))
	}
	mx.evictions = m.Counter("rdfcube_viewreg_evictions_total",
		"Materialized views evicted for the byte/count budget.")
	mx.invalids = m.Counter("rdfcube_viewreg_invalidations_total",
		"Materialized views dropped because the store's base epoch moved past them.")
	mx.coalesced = m.Counter("rdfcube_viewreg_coalesced_total",
		"Queries that piggybacked on another client's in-flight direct evaluation.")
	mx.coalescedRw = m.Counter("rdfcube_viewreg_coalesced_rewrites_total",
		"Queries that piggybacked on another client's in-flight rewrite computation.")
	mx.maintained = m.Counter("rdfcube_viewreg_maintained_total",
		"Delta-feed maintenance applications (views caught up instead of dropped).")
	mx.lazyUpgrades = m.Counter("rdfcube_viewreg_lazy_upgrades_total",
		"Registry entries upgraded to the maintained form on their first write.")
	mx.negSkips = m.Counter("rdfcube_viewreg_negcache_skips_total",
		"Candidate scans skipped by the negative cache.")
	mx.maintainSec = m.Histogram("rdfcube_viewreg_maintain_seconds",
		"Latency of one view's delta-feed maintenance.")
	mx.admitted = m.Counter("rdfcube_viewreg_admission_total",
		"Cost-based admission decisions for directly evaluated views.",
		"decision", "admitted")
	mx.refused = m.Counter("rdfcube_viewreg_admission_total",
		"Cost-based admission decisions for directly evaluated views.",
		"decision", "refused")
	return mx
}
