package benchmark

// E13 — bigger-than-RAM serving. The experiment the mmap read path
// exists for: at a dataset ~20x the default bench scale, compare
//
//   - cold open: deserializing the whole v3 snapshot onto the heap
//     versus mmapping it (O(file) page-ins deferred vs O(1) setup);
//   - cold first query: the first analytical answer after each open —
//     the heap store pays nothing extra, the mapped store pages in and
//     block-decodes only what the query touches;
//   - resident set: the VmRSS growth of each path, against the
//     snapshot's on-disk size. Heap load costs >= the decoded dataset;
//     mapped serving should stay a small fraction of the file.
//
// Both paths must produce byte-identical answers.

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"

	"rdfcube/internal/algebra"
	"rdfcube/internal/core"
	"rdfcube/internal/datagen"
	"rdfcube/internal/store"
)

// E13Bloggers is the default E13 dataset size — 20x the 5000-blogger
// base scale the rest of the suite uses, so the snapshot meaningfully
// exceeds the block caches the mapped store serves through.
const E13Bloggers = 100000

// rssBytes reads the process resident set from /proc/self/status
// (VmRSS). Returns 0 on platforms without procfs — the timing columns
// still stand, the RSS note degrades to 0.
func rssBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmRSS:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmRSS:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(string(fields[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// settleHeap runs the collector and returns pages to the OS, so VmRSS
// deltas attribute to the path under test rather than leftover garbage.
func settleHeap() {
	runtime.GC()
	debug.FreeOSMemory()
}

// RunE13BiggerThanRAM measures the mmap serving path against the heap
// loader at bloggers scale: cold open, cold first query, RSS growth.
func RunE13BiggerThanRAM(w io.Writer, bloggers int) ([]Row, error) {
	printHeader(w, "E13 Bigger-than-RAM: heap load vs mmap serve (cold open, cold first query, RSS)")
	var rows []Row
	cfg := datagen.DefaultBloggerConfig()
	cfg.Bloggers = bloggers
	cfg.Dimensions = 2
	wl, err := BuildBlogger(cfg, "sum")
	if err != nil {
		return rows, err
	}
	nTriples := wl.Inst.Len()
	query := wl.Query

	dir, err := os.MkdirTemp("", "rdfcube-e13-")
	if err != nil {
		return rows, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "base.snap")
	f, err := os.Create(path)
	if err != nil {
		return rows, err
	}
	if err := wl.Inst.WriteFrozenSnapshotV3(f); err != nil {
		f.Close()
		return rows, err
	}
	if err := f.Close(); err != nil {
		return rows, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return rows, err
	}
	snapBytes := fi.Size()

	// Drop the generation pipeline before measuring: only the path under
	// test should grow the resident set.
	*wl = Workload{}
	settleHeap()

	// Heap path: full deserialization, then the first answer.
	rss0 := rssBytes()
	var heapSt *store.Store
	tOpenHeap, err := Timed(func() error {
		hf, err := os.Open(path)
		if err != nil {
			return err
		}
		defer hf.Close()
		heapSt, err = store.OpenFrozenSnapshot(hf)
		return err
	})
	if err != nil {
		return rows, err
	}
	settleHeap()
	rssOpenHeap := rssBytes() - rss0
	var heapAns *algebra.Relation
	tQueryHeap, err := Timed(func() (err error) {
		heapAns, err = core.NewEvaluator(heapSt).Answer(query)
		return err
	})
	if err != nil {
		return rows, err
	}
	rssHeap := rssBytes() - rss0

	heapSt = nil
	settleHeap()

	// Mapped path: O(1) open, the first answer pages in on demand.
	rss0 = rssBytes()
	var mappedSt *store.Store
	tOpenMapped, err := Timed(func() (err error) {
		mappedSt, err = store.OpenFrozenSnapshotMapped(path, store.MappedOptions{})
		return err
	})
	if err != nil {
		return rows, err
	}
	if !mappedSt.Mapped() {
		return rows, fmt.Errorf("e13: snapshot did not open mapped")
	}
	settleHeap()
	rssOpenMapped := rssBytes() - rss0
	var mappedAns *algebra.Relation
	tQueryMapped, err := Timed(func() (err error) {
		mappedAns, err = core.NewEvaluator(mappedSt).Answer(query)
		return err
	})
	if err != nil {
		return rows, err
	}
	rssMapped := rssBytes() - rss0
	// Same snapshot file on both sides, so term IDs agree and the answers
	// must be byte-identical relations.
	match := algebra.Equal(heapAns, mappedAns)
	mappedSt.CloseMapped()

	mib := func(b int64) int64 { return b >> 20 }
	pct := int64(0)
	if snapBytes > 0 {
		pct = rssOpenMapped * 100 / snapBytes
	}
	row := Row{
		Label:   fmt.Sprintf("open bloggers=%d", bloggers),
		Triples: nTriples,
		Direct:  tOpenHeap,
		Rewrite: tOpenMapped,
		Cells:   0,
		Match:   true,
		Extra: fmt.Sprintf("snap=%dMB heapRSS=+%dMB mappedRSS=+%dMB (%d%% of snap)",
			mib(snapBytes), mib(rssOpenHeap), mib(rssOpenMapped), pct),
	}
	rows = append(rows, row)
	printRow(w, row)
	row = Row{
		Label:   "cold first query",
		Triples: nTriples,
		Direct:  tQueryHeap,
		Rewrite: tQueryMapped,
		Cells:   heapAns.Len(),
		Match:   match,
		Extra: fmt.Sprintf("query heapRSS=+%dMB mappedRSS=+%dMB",
			mib(rssHeap-rssOpenHeap), mib(rssMapped-rssOpenMapped)),
	}
	rows = append(rows, row)
	printRow(w, row)
	fmt.Fprintln(w, "   (direct column = heap deserialization; rewrite column = mmap'd zero-copy serving)")
	return rows, nil
}
