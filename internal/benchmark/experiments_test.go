package benchmark

// Integration tests: every experiment runner must execute at small scale
// with all correctness cross-checks (direct == rewrite) passing.

import (
	"io"
	"strings"
	"testing"
	"time"

	"rdfcube/internal/datagen"
)

func requireAllMatch(t *testing.T, rows []Row, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("experiment produced no rows")
	}
	for _, r := range rows {
		if !r.Match {
			t.Errorf("row %q: direct and rewrite disagree", r.Label)
		}
		if r.Direct <= 0 || r.Rewrite <= 0 {
			t.Errorf("row %q: non-positive timings %v/%v", r.Label, r.Direct, r.Rewrite)
		}
	}
}

func TestE1Slice(t *testing.T) {
	rows, err := RunE1Slice(io.Discard, []int{100, 300})
	requireAllMatch(t, rows, err)
	if rows[1].Triples <= rows[0].Triples {
		t.Error("instance size must grow with the sweep")
	}
}

func TestE2Dice(t *testing.T) {
	rows, err := RunE2Dice(io.Discard, 300, []float64{0.1, 0.5, 1.0})
	requireAllMatch(t, rows, err)
	// Cells must grow (weakly) with selectivity.
	for i := 1; i < len(rows); i++ {
		if rows[i].Cells < rows[i-1].Cells {
			t.Errorf("cells shrank with selectivity: %v", rows)
		}
	}
}

func TestE3DrillOut(t *testing.T) {
	rows, err := RunE3DrillOut(io.Discard, 200, []int{2, 3})
	requireAllMatch(t, rows, err)
}

func TestE4DrillIn(t *testing.T) {
	rows, err := RunE4DrillIn(io.Discard, []int{100, 200})
	requireAllMatch(t, rows, err)
}

func TestE5Summary(t *testing.T) {
	rows, err := RunE5Summary(io.Discard, 300)
	requireAllMatch(t, rows, err)
	if len(rows) != 4 {
		t.Errorf("E5 must cover all four operations, got %d rows", len(rows))
	}
}

func TestE6NaiveError(t *testing.T) {
	rows, err := RunE6NaiveError(io.Discard, 400, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Without multi-valued dimensions the naive rewrite is correct...
	if !strings.Contains(rows[0].Extra, "wrong cells 0/") {
		t.Errorf("multivalue=0: naive drill-out must agree, got %q", rows[0].Extra)
	}
	// ...and with heavy multi-valuedness it must be wrong somewhere.
	if strings.Contains(rows[1].Extra, "wrong cells 0/") {
		t.Errorf("multivalue=50%%: naive drill-out must exhibit errors, got %q", rows[1].Extra)
	}
}

func TestE7Materialize(t *testing.T) {
	rows, err := RunE7Materialize(io.Discard, []int{100, 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !strings.Contains(r.Extra, "pres=") {
			t.Errorf("E7 extra column malformed: %q", r.Extra)
		}
	}
}

func TestE8Aggregations(t *testing.T) {
	rows, err := RunE8Aggregations(io.Discard, 200, []string{"count", "sum", "avg"})
	requireAllMatch(t, rows, err)
	// avg must be flagged non-distributive.
	found := false
	for _, r := range rows {
		if r.Label == "agg=avg" && strings.Contains(r.Extra, "non-distributive") {
			found = true
		}
	}
	if !found {
		t.Error("avg row must note non-distributivity")
	}
}

func TestE9WriteMix(t *testing.T) {
	rows, err := RunE9WriteMix(io.Discard, 200, 20, []float64{0.1, 0.5})
	requireAllMatch(t, rows, err)
	for _, r := range rows {
		if !strings.Contains(r.Extra, "direct-evals=1") {
			t.Errorf("row %q: views were recomputed, not maintained (%s)", r.Label, r.Extra)
		}
	}
}

func TestE10ColdStart(t *testing.T) {
	rows, err := RunE10ColdStart(io.Discard, []int{300})
	requireAllMatch(t, rows, err)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2 (load + warm)", len(rows))
	}
	if !strings.HasPrefix(rows[0].Label, "load") || !strings.HasPrefix(rows[1].Label, "warm") {
		t.Fatalf("unexpected labels: %q, %q", rows[0].Label, rows[1].Label)
	}
}

func TestE12Batch(t *testing.T) {
	rows, err := RunE12Batch(io.Discard, 300, 2000, []int{2, 3})
	requireAllMatch(t, rows, err)
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3 (chain + two star widths)", len(rows))
	}
	for _, r := range rows {
		// The batching win rides the streamed chain steps; a planner
		// regression here would benchmark nested-vs-nested.
		if !strings.Contains(r.Extra, "stream") {
			t.Errorf("row %q: plan has no stream step (%s)", r.Label, r.Extra)
		}
	}
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll takes several seconds")
	}
	var sb strings.Builder
	if err := RunAll(&sb, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, header := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"} {
		if !strings.Contains(out, header) {
			t.Errorf("RunAll output missing %s table", header)
		}
	}
	if strings.Contains(out, "MISMATCH") {
		t.Error("RunAll reported a direct/rewrite mismatch")
	}
}

func TestBuildWorkloadFields(t *testing.T) {
	cfg := datagen.DefaultBloggerConfig()
	cfg.Bloggers = 100
	wl, err := BuildBlogger(cfg, "count")
	if err != nil {
		t.Fatal(err)
	}
	if wl.Base.Len() == 0 || wl.Inst.Len() == 0 {
		t.Error("workload graphs empty")
	}
	if wl.Pres.Len() == 0 || wl.Ans.Len() == 0 {
		t.Error("materialized views empty")
	}
	if wl.PresBuild <= 0 || wl.AnsBuild <= 0 {
		t.Error("materialization timings not recorded")
	}
}

func TestSpeedupFormatting(t *testing.T) {
	if got := Speedup(10*time.Millisecond, 1*time.Millisecond); got != "10.0x" {
		t.Errorf("Speedup = %q", got)
	}
	if got := Speedup(time.Second, 0); got != "inf" {
		t.Errorf("Speedup with zero rewrite = %q", got)
	}
}
