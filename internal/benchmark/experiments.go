package benchmark

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"time"

	"rdfcube/internal/algebra"
	"rdfcube/internal/core"
	"rdfcube/internal/datagen"
	"rdfcube/internal/rdf"
	"rdfcube/internal/store"
	"rdfcube/internal/viewreg"
)

// Row is one measured experiment data point.
type Row struct {
	// Label identifies the swept parameter value (e.g. "N=100000").
	Label string
	// Triples is the AnS instance size.
	Triples int
	// Direct and Rewrite are the evaluation times of Q_T from the
	// instance and from the materialized results, respectively.
	Direct, Rewrite time.Duration
	// Cells is the transformed cube's size; Match reports whether the
	// two strategies produced identical cubes.
	Cells int
	Match bool
	// Extra carries experiment-specific columns (error rates, sizes).
	Extra string
}

// printHeader and printRow render the paper-style result table.
func printHeader(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	fmt.Fprintf(w, "%-22s %10s %12s %12s %8s %7s  %s\n",
		"parameter", "triples", "direct", "rewrite", "speedup", "cells", "notes")
}

func printRow(w io.Writer, r Row) {
	match := ""
	if !r.Match {
		match = "MISMATCH! "
	}
	fmt.Fprintf(w, "%-22s %10d %12s %12s %8s %7d  %s%s\n",
		r.Label, r.Triples, r.Direct.Round(time.Microsecond), r.Rewrite.Round(time.Microsecond),
		Speedup(r.Direct, r.Rewrite), r.Cells, match, r.Extra)
}

// SliceSizes is the default instance-size sweep of experiment E1
// (bloggers; each blogger yields ~10 instance triples).
var SliceSizes = []int{1000, 5000, 20000, 50000}

// RunE1Slice measures SLICE: direct evaluation versus σ over ans(Q),
// sweeping dataset scale.
func RunE1Slice(w io.Writer, bloggers []int) ([]Row, error) {
	printHeader(w, "E1  SLICE: direct vs σ-rewrite over ans(Q), scale sweep")
	var rows []Row
	for _, n := range bloggers {
		cfg := datagen.DefaultBloggerConfig()
		cfg.Bloggers = n
		wl, err := BuildBlogger(cfg, "count")
		if err != nil {
			return rows, err
		}
		// Slice dimension 0 (age) to one mid-domain value.
		sliced, err := core.Slice(wl.Query, "d0", datagen.DimValue(0, 10))
		if err != nil {
			return rows, err
		}
		row, err := measureDice(wl, sliced, fmt.Sprintf("bloggers=%d", n))
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
		printRow(w, row)
	}
	return rows, nil
}

// Selectivities is the default E2 sweep: fraction of the age domain
// retained by the dice.
var Selectivities = []float64{0.01, 0.10, 0.25, 0.50, 1.0}

// RunE2Dice measures DICE at fixed scale, sweeping selectivity.
func RunE2Dice(w io.Writer, bloggers int, selectivities []float64) ([]Row, error) {
	printHeader(w, "E2  DICE: direct vs σ-rewrite over ans(Q), selectivity sweep")
	cfg := datagen.DefaultBloggerConfig()
	cfg.Bloggers = bloggers
	wl, err := BuildBlogger(cfg, "count")
	if err != nil {
		return nil, err
	}
	var rows []Row
	for _, sel := range selectivities {
		card := datagen.DimCardinality(0)
		k := int(math.Max(1, math.Round(sel*float64(card))))
		vals := make([]rdf.Term, 0, k)
		for v := 0; v < k; v++ {
			vals = append(vals, datagen.DimValue(0, v))
		}
		diced, err := core.Dice(wl.Query, map[string][]rdf.Term{"d0": vals})
		if err != nil {
			return rows, err
		}
		row, err := measureDice(wl, diced, fmt.Sprintf("selectivity=%.0f%%", sel*100))
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
		printRow(w, row)
	}
	return rows, nil
}

// measureDice times direct evaluation of a sliced/diced query against the
// σ rewrite over the materialized ans(Q) and checks they agree.
func measureDice(wl *Workload, diced *core.Query, label string) (Row, error) {
	var direct, rewrite *algebra.Relation
	dDur, err := Timed(func() (err error) {
		direct, err = wl.Ev.Answer(diced)
		return err
	})
	if err != nil {
		return Row{}, err
	}
	rDur, err := Timed(func() (err error) {
		rewrite, err = wl.Ev.DiceRewrite(diced, wl.Ans)
		return err
	})
	if err != nil {
		return Row{}, err
	}
	return Row{
		Label:   label,
		Triples: wl.Inst.Len(),
		Direct:  dDur,
		Rewrite: rDur,
		Cells:   rewrite.Len(),
		Match:   algebra.Equal(direct, rewrite),
	}, nil
}

// DimSweep is the default E3 dimensionality sweep.
var DimSweep = []int{2, 3, 4, 5, 6}

// RunE3DrillOut measures DRILL-OUT (drop the last dimension): direct
// versus Algorithm 1 over pres(Q), sweeping classifier dimensionality.
func RunE3DrillOut(w io.Writer, bloggers int, dims []int) ([]Row, error) {
	printHeader(w, "E3  DRILL-OUT: direct vs Algorithm 1 over pres(Q), dimensionality sweep")
	var rows []Row
	for _, nd := range dims {
		cfg := datagen.DefaultBloggerConfig()
		cfg.Bloggers = bloggers
		cfg.Dimensions = nd
		wl, err := BuildBlogger(cfg, "sum")
		if err != nil {
			return rows, err
		}
		drop := fmt.Sprintf("d%d", nd-1)
		qOut, err := core.DrillOut(wl.Query, drop)
		if err != nil {
			return rows, err
		}
		var direct, rewrite *algebra.Relation
		dDur, err := Timed(func() (err error) {
			direct, err = wl.Ev.Answer(qOut)
			return err
		})
		if err != nil {
			return rows, err
		}
		rDur, err := Timed(func() (err error) {
			rewrite, err = wl.Ev.DrillOutRewrite(wl.Query, wl.Pres, drop)
			return err
		})
		if err != nil {
			return rows, err
		}
		row := Row{
			Label:   fmt.Sprintf("dims=%d", nd),
			Triples: wl.Inst.Len(),
			Direct:  dDur,
			Rewrite: rDur,
			Cells:   rewrite.Len(),
			Match:   algebra.Equal(direct, rewrite),
			Extra:   fmt.Sprintf("pres=%d rows", wl.Pres.Len()),
		}
		rows = append(rows, row)
		printRow(w, row)
	}
	return rows, nil
}

// RunE4DrillIn measures DRILL-IN: direct versus Algorithm 2 (pres(Q)
// joined with the auxiliary query), sweeping dataset scale.
func RunE4DrillIn(w io.Writer, videos []int) ([]Row, error) {
	printHeader(w, "E4  DRILL-IN: direct vs Algorithm 2 over pres(Q)+q_aux, scale sweep")
	var rows []Row
	for _, n := range videos {
		cfg := datagen.DefaultVideoConfig()
		cfg.Videos = n
		cfg.Websites = n/10 + 1
		wl, err := BuildVideo(cfg, "sum")
		if err != nil {
			return rows, err
		}
		qIn, err := core.DrillIn(wl.Query, "d3")
		if err != nil {
			return rows, err
		}
		var direct, rewrite *algebra.Relation
		dDur, err := Timed(func() (err error) {
			direct, err = wl.Ev.Answer(qIn)
			return err
		})
		if err != nil {
			return rows, err
		}
		rDur, err := Timed(func() (err error) {
			rewrite, err = wl.Ev.DrillInRewrite(wl.Query, wl.Pres, "d3")
			return err
		})
		if err != nil {
			return rows, err
		}
		row := Row{
			Label:   fmt.Sprintf("videos=%d", n),
			Triples: wl.Inst.Len(),
			Direct:  dDur,
			Rewrite: rDur,
			Cells:   rewrite.Len(),
			Match:   algebra.Equal(direct, rewrite),
		}
		rows = append(rows, row)
		printRow(w, row)
	}
	return rows, nil
}

// RunE5Summary measures all four operations at one fixed scale — the
// headline comparison table.
func RunE5Summary(w io.Writer, bloggers int) ([]Row, error) {
	printHeader(w, "E5  All operations at fixed scale: direct vs rewrite")
	cfg := datagen.DefaultBloggerConfig()
	cfg.Bloggers = bloggers
	cfg.Dimensions = 3
	wl, err := BuildBlogger(cfg, "sum")
	if err != nil {
		return nil, err
	}
	var rows []Row

	sliced, err := core.Slice(wl.Query, "d0", datagen.DimValue(0, 10))
	if err != nil {
		return rows, err
	}
	row, err := measureDice(wl, sliced, "SLICE d0")
	if err != nil {
		return rows, err
	}
	rows = append(rows, row)
	printRow(w, row)

	diced, err := core.Dice(wl.Query, map[string][]rdf.Term{
		"d0": {datagen.DimValue(0, 1), datagen.DimValue(0, 2), datagen.DimValue(0, 3)},
		"d1": {datagen.DimValue(1, 0), datagen.DimValue(1, 1)},
	})
	if err != nil {
		return rows, err
	}
	row, err = measureDice(wl, diced, "DICE d0,d1")
	if err != nil {
		return rows, err
	}
	rows = append(rows, row)
	printRow(w, row)

	qOut, err := core.DrillOut(wl.Query, "d2")
	if err != nil {
		return rows, err
	}
	var direct, rewrite *algebra.Relation
	dDur, err := Timed(func() (err error) {
		direct, err = wl.Ev.Answer(qOut)
		return err
	})
	if err != nil {
		return rows, err
	}
	rDur, err := Timed(func() (err error) {
		rewrite, err = wl.Ev.DrillOutRewrite(wl.Query, wl.Pres, "d2")
		return err
	})
	if err != nil {
		return rows, err
	}
	row = Row{Label: "DRILL-OUT d2", Triples: wl.Inst.Len(), Direct: dDur, Rewrite: rDur,
		Cells: rewrite.Len(), Match: algebra.Equal(direct, rewrite)}
	rows = append(rows, row)
	printRow(w, row)

	// DRILL-IN on the video workload at comparable scale.
	vcfg := datagen.DefaultVideoConfig()
	vcfg.Videos = bloggers
	vcfg.Websites = bloggers/10 + 1
	vwl, err := BuildVideo(vcfg, "sum")
	if err != nil {
		return rows, err
	}
	qIn, err := core.DrillIn(vwl.Query, "d3")
	if err != nil {
		return rows, err
	}
	dDur, err = Timed(func() (err error) {
		direct, err = vwl.Ev.Answer(qIn)
		return err
	})
	if err != nil {
		return rows, err
	}
	rDur, err = Timed(func() (err error) {
		rewrite, err = vwl.Ev.DrillInRewrite(vwl.Query, vwl.Pres, "d3")
		return err
	})
	if err != nil {
		return rows, err
	}
	row = Row{Label: "DRILL-IN d3 (video)", Triples: vwl.Inst.Len(), Direct: dDur, Rewrite: rDur,
		Cells: rewrite.Len(), Match: algebra.Equal(direct, rewrite)}
	rows = append(rows, row)
	printRow(w, row)
	return rows, nil
}

// MultiValueSweep is the default E6 multi-valuedness sweep.
var MultiValueSweep = []float64{0, 0.1, 0.25, 0.5}

// RunE6NaiveError quantifies the correctness ablation of Example 5: the
// naive ans(Q)-based drill-out versus Algorithm 1, as multi-valuedness
// grows. The error metric is the fraction of cube cells whose naive
// aggregate differs from the correct one.
func RunE6NaiveError(w io.Writer, bloggers int, multiValue []float64) ([]Row, error) {
	printHeader(w, "E6  Naive ans(Q)-based DRILL-OUT error vs Algorithm 1, multi-valuedness sweep")
	var rows []Row
	for _, mv := range multiValue {
		cfg := datagen.DefaultBloggerConfig()
		cfg.Bloggers = bloggers
		cfg.Dimensions = 2
		cfg.MultiValueProb = mv
		wl, err := BuildBlogger(cfg, "sum")
		if err != nil {
			return rows, err
		}
		correct, err := wl.Ev.DrillOutRewrite(wl.Query, wl.Pres, "d1")
		if err != nil {
			return rows, err
		}
		var naive *algebra.Relation
		nDur, err := Timed(func() (err error) {
			naive, err = core.NaiveDrillOutFromAns(wl.Query, wl.Ans, "d1")
			return err
		})
		if err != nil {
			return rows, err
		}
		aDur, err := Timed(func() (err error) {
			_, err = wl.Ev.DrillOutRewrite(wl.Query, wl.Pres, "d1")
			return err
		})
		if err != nil {
			return rows, err
		}
		wrong, total, meanRelErr := cellErrors(correct, naive)
		// Match stays true: the naive baseline *diverging* under
		// multi-valuedness is the expected outcome, reported in Extra.
		row := Row{
			Label:   fmt.Sprintf("multivalue=%.0f%%", mv*100),
			Triples: wl.Inst.Len(),
			Direct:  nDur, // "direct" column shows the (cheaper, wrong) naive time
			Rewrite: aDur,
			Cells:   total,
			Match:   true,
			Extra: fmt.Sprintf("naive wrong cells %d/%d (%.1f%%), mean overcount %.1f%%",
				wrong, total, 100*float64(wrong)/float64(maxI(total, 1)), 100*meanRelErr),
		}
		rows = append(rows, row)
		printRow(w, row)
	}
	return rows, nil
}

// cellErrors compares two cubes cell by cell (keyed on dimensions) and
// returns the number of differing cells, the total, and the mean
// relative deviation of the naive value from the correct one.
func cellErrors(correct, naive *algebra.Relation) (wrong, total int, meanRelErr float64) {
	key := func(row algebra.Row) string {
		k := ""
		for _, v := range row[:len(row)-1] {
			k += fmt.Sprintf("%d|", v.ID)
		}
		return k
	}
	naiveVals := map[string]float64{}
	for _, row := range naive.Rows {
		naiveVals[key(row)] = row[len(row)-1].Num
	}
	var sumRel float64
	for _, row := range correct.Rows {
		total++
		want := row[len(row)-1].Num
		nv, ok := naiveVals[key(row)]
		if !ok || math.Abs(nv-want) > 1e-9 {
			wrong++
		}
		if ok && want != 0 {
			sumRel += math.Abs(nv-want) / math.Abs(want)
		}
	}
	if total > 0 {
		meanRelErr = sumRel / float64(total)
	}
	return wrong, total, meanRelErr
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RunE7Materialize measures materialization cost and size: pres(Q)
// versus ans(Q) versus the instance, across scale.
func RunE7Materialize(w io.Writer, bloggers []int) ([]Row, error) {
	printHeader(w, "E7  Materialization cost: pres(Q) vs ans(Q)")
	var rows []Row
	for _, n := range bloggers {
		cfg := datagen.DefaultBloggerConfig()
		cfg.Bloggers = n
		wl, err := BuildBlogger(cfg, "sum")
		if err != nil {
			return rows, err
		}
		row := Row{
			Label:   fmt.Sprintf("bloggers=%d", n),
			Triples: wl.Inst.Len(),
			Direct:  wl.PresBuild,
			Rewrite: wl.AnsBuild,
			Cells:   wl.Ans.Len(),
			Match:   true,
			Extra:   fmt.Sprintf("pres=%d rows, ans=%d cells", wl.Pres.Len(), wl.Ans.Len()),
		}
		rows = append(rows, row)
		printRow(w, row)
	}
	fmt.Fprintln(w, "   (direct column = pres(Q) build time; rewrite column = ans(Q) aggregation time)")
	return rows, nil
}

// AggNames is the default E8 aggregation-function sweep.
var AggNames = []string{"count", "sum", "min", "max", "avg"}

// RunE8Aggregations measures DRILL-OUT across aggregation functions,
// contrasting distributive and non-distributive ⊕ (the naive baseline is
// undefined for avg).
func RunE8Aggregations(w io.Writer, bloggers int, aggs []string) ([]Row, error) {
	printHeader(w, "E8  DRILL-OUT by aggregation function (Algorithm 1)")
	var rows []Row
	for _, name := range aggs {
		cfg := datagen.DefaultBloggerConfig()
		cfg.Bloggers = bloggers
		wl, err := BuildBlogger(cfg, name)
		if err != nil {
			return rows, err
		}
		qOut, err := core.DrillOut(wl.Query, "d1")
		if err != nil {
			return rows, err
		}
		var direct, rewrite *algebra.Relation
		dDur, err := Timed(func() (err error) {
			direct, err = wl.Ev.Answer(qOut)
			return err
		})
		if err != nil {
			return rows, err
		}
		rDur, err := Timed(func() (err error) {
			rewrite, err = wl.Ev.DrillOutRewrite(wl.Query, wl.Pres, "d1")
			return err
		})
		if err != nil {
			return rows, err
		}
		extra := "distributive"
		if !wl.Query.Agg.Distributive() {
			extra = "non-distributive (naive rewrite undefined)"
		}
		row := Row{
			Label:   "agg=" + name,
			Triples: wl.Inst.Len(),
			Direct:  dDur,
			Rewrite: rDur,
			Cells:   rewrite.Len(),
			Match:   cubesEqualApprox(direct, rewrite),
			Extra:   extra,
		}
		rows = append(rows, row)
		printRow(w, row)
	}
	return rows, nil
}

// cubesEqualApprox compares cubes with a small numeric tolerance (avg
// accumulates floating-point differences between evaluation orders).
func cubesEqualApprox(a, b *algebra.Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	key := func(row algebra.Row) string {
		k := ""
		for _, v := range row[:len(row)-1] {
			k += fmt.Sprintf("%d|", v.ID)
		}
		return k
	}
	vals := map[string]float64{}
	for _, row := range a.Rows {
		vals[key(row)] = row[len(row)-1].Num
	}
	for _, row := range b.Rows {
		want, ok := vals[key(row)]
		if !ok {
			return false
		}
		got := row[len(row)-1].Num
		if math.Abs(want-got) > 1e-6*math.Max(1, math.Abs(want)) {
			return false
		}
	}
	return true
}

// WriteMixes is the default E9 write-fraction sweep: 10% and 50% of the
// operations are insert batches.
var WriteMixes = []float64{0.1, 0.5}

// InsertBloggerFacts writes n new instance-vocabulary blogger facts
// (IDs startID..startID+n-1) into st: a :Blogger with both dimension
// values, one post and its word count — the write workload of E9 and
// BenchmarkInsertQueryMix. Values are derived deterministically from the
// fact ID so identical ID sequences produce identical instances.
func InsertBloggerFacts(st *store.Store, startID, n int) {
	res := func(local string) rdf.Term { return rdf.NewIRI(datagen.NS + local) }
	for i := 0; i < n; i++ {
		id := startID + i
		u := res(fmt.Sprintf("wuser%d", id))
		post := res(fmt.Sprintf("wpost%d", id))
		st.Add(rdf.Triple{S: u, P: rdf.Type, O: res("Blogger")})
		st.Add(rdf.Triple{S: u, P: res("hasAge"), O: datagen.DimValue(0, id%datagen.DimCardinality(0))})
		st.Add(rdf.Triple{S: u, P: res("livesIn"), O: datagen.DimValue(1, id%datagen.DimCardinality(1))})
		st.Add(rdf.Triple{S: u, P: res("wrotePost"), O: post})
		st.Add(rdf.Triple{S: post, P: res("hasWordCount"), O: rdf.NewInt(int64(100 + id%500))})
	}
}

// RunE9WriteMix measures the insert/query mix the delta layer exists
// for: the same deterministic operation stream — insert batches
// interleaved with cube queries — is run twice over identical instances.
// The "rewrite" path answers through a shared view registry whose
// registered views are *maintained* across the writes (the store's delta
// feed applied to pres(Q)); the "direct" path recomputes every answer
// from the instance, the cost model the paper's Definition 4 economy
// replaces. The final maintained cube is checked against a from-scratch
// direct evaluation of the same instance.
func RunE9WriteMix(w io.Writer, bloggers, ops int, writeFracs []float64) ([]Row, error) {
	printHeader(w, "E9  Insert/query mix: maintained views vs per-query recomputation")
	var rows []Row
	for _, frac := range writeFracs {
		cfg := datagen.DefaultBloggerConfig()
		cfg.Bloggers = bloggers
		cfg.Dimensions = 2
		wlM, err := BuildBlogger(cfg, "sum") // maintained-views pipeline
		if err != nil {
			return rows, err
		}
		wlR, err := BuildBlogger(cfg, "sum") // recompute pipeline
		if err != nil {
			return rows, err
		}
		reg := viewreg.New(wlM.Inst, viewreg.Config{})
		if _, _, err := reg.Answer(wlM.Query); err != nil {
			return rows, err
		}

		every := int(math.Max(1, math.Round(1/frac)))
		const factsPerWrite = 2
		mDur, err := Timed(func() error {
			for op := 0; op < ops; op++ {
				if op%every == 0 {
					InsertBloggerFacts(wlM.Inst, op*factsPerWrite, factsPerWrite)
					reg.NotifyWrite()
					continue
				}
				if _, _, err := reg.Answer(wlM.Query); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return rows, err
		}
		rDur, err := Timed(func() error {
			for op := 0; op < ops; op++ {
				if op%every == 0 {
					InsertBloggerFacts(wlR.Inst, op*factsPerWrite, factsPerWrite)
					continue
				}
				if _, err := wlR.Ev.Answer(wlR.Query); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return rows, err
		}

		cube, _, err := reg.Answer(wlM.Query)
		if err != nil {
			return rows, err
		}
		direct, err := wlM.Ev.Answer(wlM.Query)
		if err != nil {
			return rows, err
		}
		stats := reg.Stats()
		row := Row{
			Label:   fmt.Sprintf("writes=%.0f%%", frac*100),
			Triples: wlM.Inst.Len(),
			Direct:  rDur,
			Rewrite: mDur,
			Cells:   cube.Len(),
			Match:   algebra.Equal(direct, cube.Project(direct.Cols...)),
			Extra: fmt.Sprintf("%d ops, maintained=%d direct-evals=%d delta=%d",
				ops, stats.Maintained, stats.ByStrategy[viewreg.StrategyDirect], wlM.Inst.DeltaLen()),
		}
		rows = append(rows, row)
		printRow(w, row)
	}
	fmt.Fprintln(w, "   (direct column = recompute-per-query stream; rewrite column = maintained-view stream, same ops)")
	return rows, nil
}

// ColdStartSizes is the default E10 sweep (bloggers).
var ColdStartSizes = []int{5000, 20000}

// RunE10ColdStart measures restart cost — the economy internal/persist
// exists for. Two comparisons per scale:
//
//   - "load": deserializing the AnS instance from the v1 flat snapshot
//     (re-insert every triple into the nested maps, then re-Freeze: three
//     sorts) versus the v2 frozen snapshot (one sequential pass straight
//     into the columnar arrays);
//   - "warm": the first analytical answer after restart, recomputed
//     directly (cold registry) versus restored from a view-registry
//     snapshot (Restore + cached lookup, no evaluation).
//
// Both comparisons verify byte-level agreement of the answers produced
// by the two paths.
func RunE10ColdStart(w io.Writer, bloggers []int) ([]Row, error) {
	printHeader(w, "E10 Cold start: v1 load+Freeze vs v2 frozen load; cold vs warmed first answer")
	var rows []Row
	for _, n := range bloggers {
		cfg := datagen.DefaultBloggerConfig()
		cfg.Bloggers = n
		cfg.Dimensions = 2
		wl, err := BuildBlogger(cfg, "sum")
		if err != nil {
			return rows, err
		}
		var v1Buf, v2Buf bytes.Buffer
		if err := wl.Inst.WriteSnapshot(&v1Buf); err != nil {
			return rows, err
		}
		if err := wl.Inst.WriteFrozenSnapshot(&v2Buf); err != nil {
			return rows, err
		}

		var st1, st2 *store.Store
		t1, err := Timed(func() (err error) {
			st1, err = store.ReadSnapshotFrozen(bytes.NewReader(v1Buf.Bytes()))
			return err
		})
		if err != nil {
			return rows, err
		}
		t2, err := Timed(func() (err error) {
			st2, err = store.OpenFrozenSnapshot(bytes.NewReader(v2Buf.Bytes()))
			return err
		})
		if err != nil {
			return rows, err
		}
		a1, err := core.NewEvaluator(st1).Answer(wl.Query)
		if err != nil {
			return rows, err
		}
		a2, err := core.NewEvaluator(st2).Answer(wl.Query)
		if err != nil {
			return rows, err
		}
		row := Row{
			Label:   fmt.Sprintf("load bloggers=%d", n),
			Triples: wl.Inst.Len(),
			Direct:  t1,
			Rewrite: t2,
			Cells:   a2.Len(),
			Match:   algebra.Equal(a1, a2),
			Extra:   fmt.Sprintf("v1=%dKB v2=%dKB", v1Buf.Len()/1024, v2Buf.Len()/1024),
		}
		rows = append(rows, row)
		printRow(w, row)

		// Warm start: register + save the view, then compare the first
		// post-restart answer cold (direct evaluation) vs warmed
		// (Restore + cached lookup).
		reg := viewreg.New(wl.Inst, viewreg.Config{})
		if _, _, err := reg.Answer(wl.Query); err != nil {
			return rows, err
		}
		var views bytes.Buffer
		if _, err := reg.Save(&views); err != nil {
			return rows, err
		}
		var cold, warm *algebra.Relation
		tCold, err := Timed(func() (err error) {
			cold, err = core.NewEvaluator(st2).Answer(wl.Query)
			return err
		})
		if err != nil {
			return rows, err
		}
		var restored int
		tWarm, err := Timed(func() error {
			reg2 := viewreg.New(st2, viewreg.Config{})
			var err error
			if restored, err = reg2.Restore(bytes.NewReader(views.Bytes())); err != nil {
				return err
			}
			warm, _, err = reg2.Answer(wl.Query)
			return err
		})
		if err != nil {
			return rows, err
		}
		row = Row{
			Label:   fmt.Sprintf("warm bloggers=%d", n),
			Triples: wl.Inst.Len(),
			Direct:  tCold,
			Rewrite: tWarm,
			Cells:   warm.Len(),
			Match:   restored == 1 && algebra.Equal(cold, warm.Project(cold.Cols...)),
			Extra:   fmt.Sprintf("views=%dKB", views.Len()/1024),
		}
		rows = append(rows, row)
		printRow(w, row)
	}
	fmt.Fprintln(w, "   (direct column = v1 load+Freeze / cold first answer; rewrite column = v2 frozen load / warmed first answer)")
	return rows, nil
}

// ExperimentOrder lists the experiment names in presentation order.
var ExperimentOrder = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13"}

// Experiments maps each experiment name to a runner applying the
// default parameters at the given scale multiplier — the single place
// the e1-e8 sweep parameters are wired, shared by RunAll and
// cmd/benchrunner.
var Experiments = map[string]func(w io.Writer, scale int) ([]Row, error){
	"e1": func(w io.Writer, s int) ([]Row, error) { return RunE1Slice(w, scaledSizes(s)) },
	"e2": func(w io.Writer, s int) ([]Row, error) { return RunE2Dice(w, 10000*s, Selectivities) },
	"e3": func(w io.Writer, s int) ([]Row, error) { return RunE3DrillOut(w, 5000*s, DimSweep) },
	"e4": func(w io.Writer, s int) ([]Row, error) { return RunE4DrillIn(w, scaledSizes(s)) },
	"e5": func(w io.Writer, s int) ([]Row, error) { return RunE5Summary(w, 10000*s) },
	"e6": func(w io.Writer, s int) ([]Row, error) { return RunE6NaiveError(w, 5000*s, MultiValueSweep) },
	"e7": func(w io.Writer, s int) ([]Row, error) { return RunE7Materialize(w, scaledSizes(s)) },
	"e8": func(w io.Writer, s int) ([]Row, error) { return RunE8Aggregations(w, 5000*s, AggNames) },
	"e9": func(w io.Writer, s int) ([]Row, error) { return RunE9WriteMix(w, 5000*s, 60, WriteMixes) },
	"e10": func(w io.Writer, s int) ([]Row, error) {
		sizes := make([]int, len(ColdStartSizes))
		for i, n := range ColdStartSizes {
			sizes[i] = n * s
		}
		return RunE10ColdStart(w, sizes)
	},
	"e11": func(w io.Writer, s int) ([]Row, error) { return RunE11StarJoin(w, 60000*s, StarKs) },
	"e12": func(w io.Writer, s int) ([]Row, error) { return RunE12Batch(w, 8000*s, 40000*s, WideStarKs) },
	"e13": func(w io.Writer, s int) ([]Row, error) { return RunE13BiggerThanRAM(w, E13Bloggers*s) },
}

func scaledSizes(scale int) []int {
	out := make([]int, len(SliceSizes))
	for i, s := range SliceSizes {
		out[i] = s * scale
	}
	return out
}

// ClampScale normalizes a scale multiplier (anything below 1 means 1).
func ClampScale(scale int) int {
	if scale < 1 {
		return 1
	}
	return scale
}

// RunAll executes every experiment with default parameters, writing the
// tables to w. scale tunes the base sizes (1 = quick, larger = closer to
// the tech report's scales).
func RunAll(w io.Writer, scale int) error {
	scale = ClampScale(scale)
	for _, name := range ExperimentOrder {
		if _, err := Experiments[name](w, scale); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}
