package benchmark

// E12: the batch-at-a-time pipeline vs the row-at-a-time pipeline on
// the workloads the batch engine targets — multi-hop chain joins whose
// intermediate bindings stream through the PSO permutation, and wide
// stars with free value variables whose seed scan bulk-fills batches
// straight from the frozen columns. Both engines run the same plan over
// the same store; only the execution granularity differs, so the
// direct/rewrite ratio isolates the batching win.

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"rdfcube/internal/bgp"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// chainNS is the vocabulary namespace of the chain workload.
const chainNS = "http://rdfcube.example.org/chain#"

// chainHops is the number of edge predicates (:e0 .. :e{hops-1}) and
// therefore the length of the chain query.
const chainHops = 3

// chainFanout is the number of outgoing edges per node and layer.
const chainFanout = 3

func chainPrefixes() sparql.Prefixes {
	p := sparql.DefaultPrefixes()
	p["c"] = chainNS
	return p
}

// BuildChainGraph generates a frozen layered graph: chainHops+1 layers
// of n nodes each, every node of layer l carrying chainFanout :e<l>
// edges to (deterministically) random nodes of layer l+1.
func BuildChainGraph(n int) *store.Store {
	rng := rand.New(rand.NewSource(1207))
	st := store.New()
	node := func(layer, i int) rdf.Term {
		return rdf.NewIRI(fmt.Sprintf("%sn%d_%d", chainNS, layer, i))
	}
	for l := 0; l < chainHops; l++ {
		p := rdf.NewIRI(fmt.Sprintf("%se%d", chainNS, l))
		for i := 0; i < n; i++ {
			for j := 0; j < chainFanout; j++ {
				st.Add(rdf.Triple{S: node(l, i), P: p, O: node(l+1, rng.Intn(n))})
			}
		}
	}
	st.Freeze()
	return st
}

// ChainQuery builds the full-length chain BGP with every join variable
// free: q(x0, x<hops>) :- x0 c:e0 x1, ..., x{hops-1} c:e{hops-1} x{hops}.
// After the seed scan every later step has one bound subject, a
// constant predicate and a free object tail — the streamed PSO shape.
func ChainQuery() (*sparql.Query, error) {
	pats := make([]string, chainHops)
	for l := 0; l < chainHops; l++ {
		pats[l] = fmt.Sprintf("x%d c:e%d x%d", l, l, l+1)
	}
	head := fmt.Sprintf("q(x0, x%d)", chainHops)
	return sparql.ParseDatalog(head+" :- "+strings.Join(pats, ", "), chainPrefixes())
}

// WideStarQuery builds the k-pattern star with FREE value variables —
// q(x, v0, ..., v{k-1}) :- x s:a0 v0, ..., x s:a{k-1} v{k-1} — over the
// E11 star vocabulary. Unlike StarQuery's constant objects this shape
// enumerates every subject's attribute tuple: the seed bulk-fills
// batches from the frozen columns and each later pattern streams tails
// through PSO.
func WideStarQuery(k int) (*sparql.Query, error) {
	if k < 2 || k > len(starCards) {
		return nil, fmt.Errorf("wide star arity %d out of range [2, %d]", k, len(starCards))
	}
	pats := make([]string, k)
	vars := make([]string, k+1)
	vars[0] = "x"
	for j := 0; j < k; j++ {
		pats[j] = fmt.Sprintf("x s:a%d v%d", j, j)
		vars[j+1] = fmt.Sprintf("v%d", j)
	}
	head := "q(" + strings.Join(vars, ", ") + ")"
	return sparql.ParseDatalog(head+" :- "+strings.Join(pats, ", "), starPrefixes())
}

// WideStarKs is the default E12 wide-star sweep.
var WideStarKs = []int{2, 3, 5}

// RunE12Batch measures the batch engine against the pinned row pipeline
// (direct column = row-at-a-time, rewrite column = batch) on the chain
// and wide-star workloads. Match verifies the two pipelines return
// identical bindings.
func RunE12Batch(w io.Writer, chainNodes, starSubjects int, ks []int) ([]Row, error) {
	printHeader(w, "E12 Batch pipeline: row-at-a-time vs batch-at-a-time execution")
	type job struct {
		label string
		st    *store.Store
		q     *sparql.Query
	}
	var jobs []job
	chainStore := BuildChainGraph(chainNodes)
	cq, err := ChainQuery()
	if err != nil {
		return nil, err
	}
	jobs = append(jobs, job{fmt.Sprintf("chain hops=%d", chainHops), chainStore, cq})
	starStore := BuildStarGraph(starSubjects)
	for _, k := range ks {
		wq, err := WideStarQuery(k)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job{fmt.Sprintf("widestar k=%d", k), starStore, wq})
	}

	var rows []Row
	for _, j := range jobs {
		ops, err := bgp.Explain(j.st, j.q)
		if err != nil {
			return rows, err
		}
		var rowRes, batchRes *bgp.Result
		rDur, err := Timed(func() (err error) {
			rowRes, err = bgp.Eval(j.st, j.q, bgp.Options{Distinct: true, RowPipeline: true})
			return err
		})
		if err != nil {
			return rows, err
		}
		bDur, err := Timed(func() (err error) {
			batchRes, err = bgp.Eval(j.st, j.q, bgp.Options{Distinct: true})
			return err
		})
		if err != nil {
			return rows, err
		}
		rowRes.SortRows()
		batchRes.SortRows()
		match := rowRes.Len() == batchRes.Len()
		if match {
		outer:
			for i := range rowRes.Rows {
				for c := range rowRes.Rows[i] {
					if rowRes.Rows[i][c] != batchRes.Rows[i][c] {
						match = false
						break outer
					}
				}
			}
		}
		row := Row{
			Label:   j.label,
			Triples: j.st.Len(),
			Direct:  rDur,
			Rewrite: bDur,
			Cells:   batchRes.Len(),
			Match:   match,
			Extra:   "plan=" + strings.Join(ops, ","),
		}
		rows = append(rows, row)
		printRow(w, row)
	}
	fmt.Fprintln(w, "   (direct column = row-at-a-time pipeline; rewrite column = batch pipeline, same plan)")
	return rows, nil
}
