package benchmark

// Machine-readable experiment output. cmd/benchrunner writes one
// BENCH_*.json report per invocation so successive PRs can diff the
// performance trajectory instead of eyeballing tables.

import (
	"encoding/json"
	"io"
)

// JSONRow is the machine-readable form of a Row.
type JSONRow struct {
	Label     string  `json:"label"`
	Triples   int     `json:"triples"`
	DirectNs  int64   `json:"direct_ns"`
	RewriteNs int64   `json:"rewrite_ns"`
	Speedup   float64 `json:"speedup"`
	Cells     int     `json:"cells"`
	Match     bool    `json:"match"`
	Extra     string  `json:"extra,omitempty"`
}

// Report aggregates experiment results for one benchrunner invocation.
type Report struct {
	Scale       int                  `json:"scale"`
	Experiments map[string][]JSONRow `json:"experiments"`
}

// NewReport returns an empty report for the given scale factor.
func NewReport(scale int) *Report {
	return &Report{Scale: scale, Experiments: map[string][]JSONRow{}}
}

// Add records an experiment's measured rows under its name ("e1"..."e11").
func (r *Report) Add(name string, rows []Row) {
	out := make([]JSONRow, len(rows))
	for i, row := range rows {
		speedup := 0.0
		if row.Rewrite > 0 {
			speedup = float64(row.Direct) / float64(row.Rewrite)
		}
		out[i] = JSONRow{
			Label:     row.Label,
			Triples:   row.Triples,
			DirectNs:  row.Direct.Nanoseconds(),
			RewriteNs: row.Rewrite.Nanoseconds(),
			Speedup:   speedup,
			Cells:     row.Cells,
			Match:     row.Match,
			Extra:     row.Extra,
		}
	}
	r.Experiments[name] = out
}

// MergeBest folds a repeat measurement into base, row by row (matched
// by label): each path keeps its best (minimum) observed time — the
// standard best-of-N noise reduction — and Match holds only if every
// repetition matched. Rows present in just one input pass through.
func MergeBest(base, rep []Row) []Row {
	byLabel := make(map[string]int, len(base))
	out := append([]Row(nil), base...)
	for i, r := range out {
		byLabel[r.Label] = i
	}
	for _, r := range rep {
		i, ok := byLabel[r.Label]
		if !ok {
			byLabel[r.Label] = len(out)
			out = append(out, r)
			continue
		}
		if r.Direct < out[i].Direct {
			out[i].Direct = r.Direct
		}
		if r.Rewrite < out[i].Rewrite {
			out[i].Rewrite = r.Rewrite
		}
		out[i].Match = out[i].Match && r.Match
	}
	return out
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
