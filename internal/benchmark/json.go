package benchmark

// Machine-readable experiment output. cmd/benchrunner writes one
// BENCH_*.json report per invocation so successive PRs can diff the
// performance trajectory instead of eyeballing tables.

import (
	"encoding/json"
	"io"
)

// JSONRow is the machine-readable form of a Row.
type JSONRow struct {
	Label     string  `json:"label"`
	Triples   int     `json:"triples"`
	DirectNs  int64   `json:"direct_ns"`
	RewriteNs int64   `json:"rewrite_ns"`
	Speedup   float64 `json:"speedup"`
	Cells     int     `json:"cells"`
	Match     bool    `json:"match"`
	Extra     string  `json:"extra,omitempty"`
}

// Report aggregates experiment results for one benchrunner invocation.
type Report struct {
	Scale       int                  `json:"scale"`
	Experiments map[string][]JSONRow `json:"experiments"`
}

// NewReport returns an empty report for the given scale factor.
func NewReport(scale int) *Report {
	return &Report{Scale: scale, Experiments: map[string][]JSONRow{}}
}

// Add records an experiment's measured rows under its name ("e1"..."e8").
func (r *Report) Add(name string, rows []Row) {
	out := make([]JSONRow, len(rows))
	for i, row := range rows {
		speedup := 0.0
		if row.Rewrite > 0 {
			speedup = float64(row.Direct) / float64(row.Rewrite)
		}
		out[i] = JSONRow{
			Label:     row.Label,
			Triples:   row.Triples,
			DirectNs:  row.Direct.Nanoseconds(),
			RewriteNs: row.Rewrite.Nanoseconds(),
			Speedup:   speedup,
			Cells:     row.Cells,
			Match:     row.Match,
			Extra:     row.Extra,
		}
	}
	r.Experiments[name] = out
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
