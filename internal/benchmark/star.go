package benchmark

// E11: the star-join workload the cursor-based join engine exists for.
// A synthetic instance of subjects carrying k attribute predicates with
// small value domains; the query is the canonical star BGP — one
// subject variable intersected across k constant-object patterns
// (exactly the shape a DICE over a k-dimensional classifier produces).
// Each pattern alone matches a large run (subjects/card_j), while the
// intersection is tiny (subjects/lcm of the domains), so the
// index-nested-loop baseline materializes and probes big intermediates
// where the leapfrog triejoin seeks across k sorted cursors.

import (
	"fmt"
	"io"
	"strings"

	"rdfcube/internal/bgp"
	"rdfcube/internal/rdf"
	"rdfcube/internal/sparql"
	"rdfcube/internal/store"
)

// starNS is the vocabulary namespace of the star workload.
const starNS = "http://rdfcube.example.org/star#"

// starCards are the attribute-value domain sizes, predicate by
// predicate. Subject i carries :aj -> :vj_<i mod card_j>, so the
// star query selecting every 0-value matches i % lcm(cards) == 0.
var starCards = []int{4, 6, 8, 10, 12}

// starPrefixes is the prefix table of the star queries.
func starPrefixes() sparql.Prefixes {
	p := sparql.DefaultPrefixes()
	p["s"] = starNS
	return p
}

// BuildStarGraph generates a frozen star instance of the given subject
// count with len(starCards) attribute predicates per subject.
func BuildStarGraph(subjects int) *store.Store {
	st := store.New()
	res := func(local string) rdf.Term { return rdf.NewIRI(starNS + local) }
	for i := 0; i < subjects; i++ {
		s := res(fmt.Sprintf("s%d", i))
		for j, card := range starCards {
			st.Add(rdf.Triple{S: s, P: res(fmt.Sprintf("a%d", j)), O: res(fmt.Sprintf("v%d_%d", j, i%card))})
		}
	}
	st.Freeze()
	return st
}

// StarQuery builds the k-pattern star BGP over the 0-values:
// q(x) :- x s:a0 s:v0_0, ..., x s:a{k-1} s:v{k-1}_0.
func StarQuery(k int) (*sparql.Query, error) {
	if k < 2 || k > len(starCards) {
		return nil, fmt.Errorf("star query arity %d out of range [2, %d]", k, len(starCards))
	}
	pats := make([]string, k)
	for j := 0; j < k; j++ {
		pats[j] = fmt.Sprintf("x s:a%d s:v%d_0", j, j)
	}
	return sparql.ParseDatalog("q(x) :- "+strings.Join(pats, ", "), starPrefixes())
}

// StarKs is the default E11 sweep: star width 2 (merge join) through 5
// (leapfrog over five cursors).
var StarKs = []int{2, 3, 4, 5}

// RunE11StarJoin measures the join engine on star BGPs: the same query
// evaluated through the index-nested-loop reference (direct column)
// and through the cursor operators the planner picks — merge join at
// k=2, leapfrog triejoin at k>=3 (rewrite column). Match verifies the
// two paths return identical bindings.
func RunE11StarJoin(w io.Writer, subjects int, ks []int) ([]Row, error) {
	printHeader(w, "E11 Star joins: nested-loop vs cursor engine (merge/leapfrog)")
	st := BuildStarGraph(subjects)
	var rows []Row
	for _, k := range ks {
		q, err := StarQuery(k)
		if err != nil {
			return rows, err
		}
		ops, err := bgp.Explain(st, q)
		if err != nil {
			return rows, err
		}
		var nested, cursor *bgp.Result
		nDur, err := Timed(func() (err error) {
			nested, err = bgp.Eval(st, q, bgp.Options{Distinct: true, ForceNestedLoop: true})
			return err
		})
		if err != nil {
			return rows, err
		}
		cDur, err := Timed(func() (err error) {
			cursor, err = bgp.Eval(st, q, bgp.Options{Distinct: true})
			return err
		})
		if err != nil {
			return rows, err
		}
		nested.SortRows()
		cursor.SortRows()
		match := nested.Len() == cursor.Len()
		if match {
			for i := range nested.Rows {
				if nested.Rows[i][0] != cursor.Rows[i][0] {
					match = false
					break
				}
			}
		}
		row := Row{
			Label:   fmt.Sprintf("k=%d", k),
			Triples: st.Len(),
			Direct:  nDur,
			Rewrite: cDur,
			Cells:   cursor.Len(),
			Match:   match,
			Extra:   "plan=" + strings.Join(ops, ","),
		}
		rows = append(rows, row)
		printRow(w, row)
	}
	fmt.Fprintln(w, "   (direct column = index-nested-loop path; rewrite column = merge/leapfrog cursor path, same query)")
	return rows, nil
}
