// Package benchmark implements the reconstructed experiment suite of
// DESIGN.md §4: for each OLAP operation it measures answering the
// transformed query directly from the AnS instance versus answering it
// from the materialized results of the original query (ans(Q) for
// SLICE/DICE, pres(Q) for DRILL-OUT/DRILL-IN), across sweeps of data
// scale, dimensionality, selectivity, multi-valuedness and — for the
// delta-layer write path (E9) — the read/write mix.
//
// The workshop paper defers its measured numbers to tech report RR-8668;
// this package regenerates the experiment *shape* the paper claims:
// rewriting wins, with the gap growing with instance size.
package benchmark

import (
	"fmt"
	"time"

	"rdfcube/internal/algebra"
	"rdfcube/internal/core"
	"rdfcube/internal/datagen"
	"rdfcube/internal/rdfs"
	"rdfcube/internal/store"
)

// Workload bundles everything an experiment needs: the pipeline output
// (saturated base, AnS instance, query) plus the materialized views.
type Workload struct {
	// Base is the saturated base graph.
	Base *store.Store
	// Inst is the materialized AnS instance.
	Inst *store.Store
	// Query is the original analytical query Q.
	Query *core.Query
	// Ev evaluates queries over Inst.
	Ev *core.Evaluator
	// Pres is the materialized pres(Q); Ans the materialized ans(Q).
	Pres, Ans *algebra.Relation
	// PresBuild and AnsBuild record materialization cost.
	PresBuild, AnsBuild time.Duration
}

// BuildBlogger runs the full pipeline on a blogger configuration:
// generate → saturate → materialize schema → build the n-dimensional
// AnQ → materialize pres(Q) and ans(Q).
func BuildBlogger(cfg datagen.BloggerConfig, aggName string) (*Workload, error) {
	base, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	rdfs.Saturate(base)
	base.Freeze() // loading done; materialization queries run on the fast path
	schema, err := datagen.BloggerSchema(cfg.Dimensions)
	if err != nil {
		return nil, err
	}
	inst, err := schema.Materialize(base)
	if err != nil {
		return nil, err
	}
	q, err := datagen.BloggerQuery(cfg.Dimensions, aggName)
	if err != nil {
		return nil, err
	}
	return finishWorkload(base, inst, q)
}

// BuildVideo runs the pipeline on a video configuration.
func BuildVideo(cfg datagen.VideoConfig, aggName string) (*Workload, error) {
	base, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	rdfs.Saturate(base)
	base.Freeze()
	inst, err := datagen.VideoSchema().Materialize(base)
	if err != nil {
		return nil, err
	}
	q, err := datagen.VideoQuery(aggName)
	if err != nil {
		return nil, err
	}
	return finishWorkload(base, inst, q)
}

func finishWorkload(base, inst *store.Store, q *core.Query) (*Workload, error) {
	w := &Workload{Base: base, Inst: inst, Query: q, Ev: core.NewEvaluator(inst)}
	t0 := time.Now()
	pres, err := w.Ev.Pres(q)
	if err != nil {
		return nil, err
	}
	w.PresBuild = time.Since(t0)
	w.Pres = pres
	t0 = time.Now()
	ansQ, err := w.Ev.AnswerFromPres(q, pres)
	if err != nil {
		return nil, err
	}
	w.AnsBuild = time.Since(t0)
	w.Ans = ansQ
	return w, nil
}

// Timed runs f once and returns its duration, propagating errors.
func Timed(f func() error) (time.Duration, error) {
	t0 := time.Now()
	err := f()
	return time.Since(t0), err
}

// Speedup formats direct/rewrite as a ratio string ("12.3x").
func Speedup(direct, rewrite time.Duration) string {
	if rewrite <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(direct)/float64(rewrite))
}
