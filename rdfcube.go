// Package rdfcube is an OLAP engine for RDF analytics, reproducing
// "Efficient OLAP Operations For RDF Analytics" (Akbari Azirani,
// Goasdoué, Manolescu, Roatiş; DESWeb @ ICDE 2015).
//
// The library provides, bottom to top:
//
//   - an in-memory, dictionary-encoded RDF triple store with N-Triples /
//     Turtle-lite I/O and RDFS saturation;
//   - conjunctive (BGP) queries in both the paper's datalog-style syntax
//     and a SPARQL SELECT subset, evaluated with statistics-driven join
//     ordering;
//   - analytical schemas (AnS): lenses whose node and edge queries
//     restructure a base graph into an analysis-ready instance;
//   - analytical queries (AnQ): ⟨classifier, measure, ⊕⟩ cubes over an
//     AnS instance, with multi-valued dimensions and bag-semantics
//     measures;
//   - the four OLAP operations (SLICE, DICE, DRILL-OUT, DRILL-IN) as
//     query transformations, and the paper's view-based rewriting
//     algorithms that answer a transformed cube from the materialized
//     partial result pres(Q) or answer ans(Q) of the original query.
//
// # Quick start
//
//	base := rdfcube.NewGraph()
//	// ... load triples (rdfcube.ReadNTriples) ...
//	rdfcube.Saturate(base)
//	inst, _ := schema.Materialize(base)
//	q, _ := rdfcube.NewQuery(classifier, measure, rdfcube.Count)
//	ev := rdfcube.NewEvaluator(inst)
//	cube, _ := ev.Answer(q)
//
// See examples/ for complete programs.
package rdfcube

import (
	"io"

	"rdfcube/internal/agg"
	"rdfcube/internal/algebra"
	"rdfcube/internal/ans"
	"rdfcube/internal/bgp"
	"rdfcube/internal/core"
	"rdfcube/internal/export"
	"rdfcube/internal/incr"
	"rdfcube/internal/nt"
	"rdfcube/internal/rdf"
	"rdfcube/internal/rdfs"
	"rdfcube/internal/session"
	"rdfcube/internal/sparql"
	"rdfcube/internal/sparqlagg"
	"rdfcube/internal/store"
)

// Re-exported data-model types.
type (
	// Term is an RDF term (IRI, literal or blank node).
	Term = rdf.Term
	// Triple is an RDF statement.
	Triple = rdf.Triple
	// Graph is an indexed, dictionary-encoded triple store.
	Graph = store.Store
	// BGPQuery is a conjunctive (basic graph pattern) query.
	BGPQuery = sparql.Query
	// Prefixes maps prefix names to namespace IRIs for the parsers.
	Prefixes = sparql.Prefixes
	// Schema is an analytical schema (AnS).
	Schema = ans.Schema
	// Query is an (extended) analytical query (AnQ).
	Query = core.Query
	// Sigma is the dimension-restriction function of extended AnQs.
	Sigma = core.Sigma
	// Evaluator answers analytical queries over an AnS instance.
	Evaluator = core.Evaluator
	// Cube is a relation: ans(Q) cubes, pres(Q) partial results.
	Cube = algebra.Relation
	// CubeCell is a decoded cube row.
	CubeCell = core.CubeCell
	// AggFunc is an aggregation function ⊕.
	AggFunc = agg.Func
	// BindingTable is a BGP evaluation result.
	BindingTable = bgp.Result
)

// Aggregation functions.
var (
	Count         = agg.Count
	Sum           = agg.Sum
	Avg           = agg.Avg
	Min           = agg.Min
	Max           = agg.Max
	CountDistinct = agg.CountDistinct
)

// Term constructors.
var (
	NewIRI          = rdf.NewIRI
	NewLiteral      = rdf.NewLiteral
	NewTypedLiteral = rdf.NewTypedLiteral
	NewLangLiteral  = rdf.NewLangLiteral
	NewInt          = rdf.NewInt
	NewFloat        = rdf.NewFloat
	NewBool         = rdf.NewBool
	NewBlank        = rdf.NewBlank
	NewTriple       = rdf.NewTriple
)

// NewGraph returns an empty triple store.
func NewGraph() *Graph { return store.New() }

// WriteFrozenSnapshot serializes g in the frozen binary snapshot format
// (v2): front-coded dictionary plus the sorted columnar indexes, so
// OpenFrozenSnapshot loads it without re-sorting or rebuilding. Any
// pending writes are compacted in first.
func WriteFrozenSnapshot(g *Graph, w io.Writer) error { return g.WriteFrozenSnapshot(w) }

// OpenFrozenSnapshot loads a binary snapshot written by
// WriteFrozenSnapshot (or the legacy flat format of rdfcubed's GET
// /snapshot); the returned graph is frozen and ready to query.
func OpenFrozenSnapshot(r io.Reader) (*Graph, error) { return store.OpenFrozenSnapshot(r) }

// ReadNTriples loads an N-Triples / Turtle-lite document into g.
// It returns the number of distinct triples added.
func ReadNTriples(g *Graph, r io.Reader) (int, error) {
	added := 0
	rd := nt.NewReader(r)
	for {
		t, err := rd.Next()
		if err == io.EOF {
			return added, nil
		}
		if err != nil {
			return added, err
		}
		if g.Add(t) {
			added++
		}
	}
}

// WriteNTriples serializes every triple of g to w in N-Triples syntax.
func WriteNTriples(g *Graph, w io.Writer) error {
	wr := nt.NewWriter(w)
	d := g.Dict()
	var outErr error
	g.ForEach(store.Pattern{}, func(t store.IDTriple) bool {
		tr, ok := d.DecodeTriple(t.S, t.P, t.O)
		if !ok {
			return true
		}
		if err := wr.Write(tr); err != nil {
			outErr = err
			return false
		}
		return true
	})
	if outErr != nil {
		return outErr
	}
	return wr.Flush()
}

// Saturate applies RDFS entailment rules to g until fixpoint and returns
// the number of derived triples.
func Saturate(g *Graph) int { return rdfs.Saturate(g) }

// ParseQuery parses a BGP query in the paper's datalog notation, e.g.
//
//	c(x, dage) :- x rdf:type :Blogger, x :hasAge dage
func ParseQuery(text string, prefixes Prefixes) (*BGPQuery, error) {
	return sparql.ParseDatalog(text, prefixes)
}

// ParseSelect parses a SPARQL SELECT subset query.
func ParseSelect(text string) (*BGPQuery, error) { return sparql.ParseSelect(text) }

// ParseTerm parses a constant RDF term in the datalog surface syntax
// (<IRI>, prefixed:name, quoted literal, integer, float, _:blank).
func ParseTerm(text string, prefixes Prefixes) (Term, error) {
	return sparql.ParseTerm(text, prefixes)
}

// DefaultPrefixes returns the rdf/rdfs/xsd prefix table.
func DefaultPrefixes() Prefixes { return sparql.DefaultPrefixes() }

// EvalBGP evaluates a BGP query over g with set semantics.
func EvalBGP(g *Graph, q *BGPQuery) (*BindingTable, error) { return bgp.EvalSet(g, q) }

// NewQuery constructs and validates an analytical query
// ⟨classifier, measure, ⊕⟩.
func NewQuery(classifier, measure *BGPQuery, f AggFunc) (*Query, error) {
	return core.New(classifier, measure, f)
}

// NewEvaluator returns an evaluator over the AnS instance inst.
func NewEvaluator(inst *Graph) *Evaluator { return core.NewEvaluator(inst) }

// AggByName resolves an aggregation function name ("count", "sum",
// "avg", "min", "max", "countdistinct").
func AggByName(name string) (AggFunc, error) { return agg.ByName(name) }

// The OLAP operations (Section 2) as query transformations.
var (
	// SliceOp binds one dimension to a single value.
	SliceOp = core.Slice
	// DiceOp restricts several dimensions to value sets.
	DiceOp = core.Dice
	// DrillOutOp removes dimensions from the classifier.
	DrillOutOp = core.DrillOut
	// DrillInOp adds existential classifier variables as dimensions.
	DrillInOp = core.DrillIn
)

// DecodeCube renders a cube's rows with terms resolved through g's
// dictionary.
func DecodeCube(c *Cube, g *Graph) []CubeCell { return core.DecodeCube(c, g.Dict()) }

// CubesEqual reports whether two cubes hold identical bags of rows.
func CubesEqual(a, b *Cube) bool { return algebra.Equal(a, b) }

// Session-level reuse: a Session answers successive analytical queries,
// automatically detecting when a new query is a SLICE/DICE/DRILL-OUT/
// DRILL-IN of a previously materialized one and applying the paper's
// rewriting instead of re-evaluating (the problem statement of Figure 2).
type (
	// Session is a materialized-cube manager over one AnS instance.
	Session = session.Manager
	// Strategy names how a Session answered a query ("cached",
	// "dice-rewrite", "drillout-rewrite", "drillin-rewrite", "direct").
	Strategy = session.Strategy
)

// NewSession returns a session manager over the AnS instance inst.
func NewSession(inst *Graph) *Session { return session.NewManager(inst) }

// MaintainedPres is a pres(Q) materialization that absorbs instance
// insertions incrementally (Δ-rules over Definition 4), keeping the
// rewriting algorithms valid under updates without recomputation.
type MaintainedPres = incr.MaintainedPres

// NewMaintainedPres fully evaluates q and returns a maintained pres(Q);
// feed updates through its Insert method.
func NewMaintainedPres(ev *Evaluator, q *Query) (*MaintainedPres, error) {
	return incr.New(ev, q)
}

// AggSelect is a parsed SPARQL 1.1 aggregate SELECT query — the
// restricted analytical dialect the paper's related work positions AnQs
// against (single BGP shared by grouping and aggregation).
type AggSelect = sparqlagg.Query

// ParseAggSelect parses a SPARQL aggregate SELECT, e.g.
//
//	SELECT ?age (COUNT(?site) AS ?n) WHERE { ... } GROUP BY ?age
func ParseAggSelect(text string) (*AggSelect, error) { return sparqlagg.Parse(text) }

// EvalAggSelect answers a SPARQL aggregate query over g with SPARQL 1.1
// group/aggregate semantics.
func EvalAggSelect(g *Graph, q *AggSelect) (*Cube, error) { return sparqlagg.Eval(g, q) }

// ExportOptions controls cube rendering (dictionary, prefix
// abbreviation, sorting).
type ExportOptions = export.Options

// WriteCube renders a cube to w in the given format: "text" (aligned
// table), "csv", or "json".
func WriteCube(w io.Writer, c *Cube, g *Graph, format string, prefixes Prefixes) error {
	return export.Format(w, c, format, export.Options{
		Dict:     g.Dict(),
		Prefixes: prefixes,
		SortRows: true,
	})
}
